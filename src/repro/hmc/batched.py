"""Array-backed back-end engine: the batched HMC/HBM device twins.

:class:`BatchedHMCDevice` re-implements the :class:`repro.hmc.device.
HMCDevice` ``submit`` path with **deferred accounting**: the queueing
arithmetic (link serialization, crossbar routing, vault admission, bank
busy-until) is unchanged — it is the feedback loop the coalescer's MSHR
release heap depends on, so each packet's completion cycle must be
available immediately — but every observable side effect (StatsRegistry
counters, the latency accumulator, EnergyModel charges) lands in a flat
window accumulator and is merged into the shared registries once per
:meth:`sync`, not once per packet.

Two call surfaces share that accumulator:

* :meth:`submit` — the :class:`repro.mshr.dmc.MemoryDevice` protocol
  method, used inside coalescer runs. Identical timing maths to the
  reference, with the per-packet counter/energy/accumulator writes
  replaced by indexed increments on one local list.
* :meth:`submit_window` — a window-at-a-time entry point for replaying
  a pre-issued packet stream (the bench harness's isolated device
  stage). The whole loop runs on hoisted locals — busy-horizon lists,
  bank dicts, flit memos, plain-int window counters — and merges once
  at the end.

**Bit-identity.** The merged totals equal the reference's per-packet
accumulation bitwise: six of the seven energy categories carry
integer-valued pJ constants, so summing integer quantities and
multiplying once is exact below 2**53. DRAM-TRANSFER (1.2 pJ/byte is
not exactly representable) is the one category that cannot defer — a
window-merged partial sum rounds differently from the reference's
running total once that total is nonzero — so it alone is charged live
per packet, in packet order, exactly as the reference charges it.
Latency samples are integral floats, covered by the same exactness
argument ``Accumulator.add_repeat`` documents (counts and sums stay
exact integers until the merge). Structural state (link/vault/bank
busy horizons, bank
access counts, the round-robin cursor) is shared live with the parent,
so residual state matches the reference after every packet.

The engine refuses configurations it cannot uphold bit-identity for:
enabled telemetry probes, span tracing, or a per-packet ``Telemetry``
instance raise ``ValueError`` at construction (mirroring
:class:`repro.core.pac_batched.BatchedPagedAdaptiveCoalescer`), and
``System`` demotes ``engine="auto"`` to the reference device in those
cases under the ``engine:backend:batched->reference`` rung.
"""

from __future__ import annotations

from math import inf
from typing import List, Optional

from repro.common.types import HMC_CONTROL_OVERHEAD_BYTES, MemOp
from repro.config import HMCConfig
from repro.hmc.device import (
    LOCAL_ROUTE_CYCLES,
    REMOTE_ROUTE_CYCLES,
    HMCDevice,
)
from repro.hmc.hbm import hbm_config
from repro.hmc.link import CYCLES_PER_FLIT
from repro.hmc.vault import VAULT_CTRL_CYCLES

#: Window-accumulator slots — all integer counts. DRAM-TRANSFER is
#: deliberately absent: its pJ constant (1.2) is not exactly
#: representable, so it charges live per packet (see module docstring).
(
    _W_PACKETS,
    _W_PAYLOAD,
    _W_REQ_FLITS,
    _W_RSP_FLITS,
    _W_LOCAL,
    _W_REMOTE,
    _W_LOCAL_FLITS,
    _W_REMOTE_FLITS,
    _W_ADMITTED,
    _W_QWAIT,
    _W_RQST_SLOT,
    _W_RSP_SLOT,
    _W_CONFLICTS,
    _W_ACTIVATIONS,
    _W_ACT_ROWS,
) = range(15)

_W_SLOTS = 15


def _fresh_window() -> List[int]:
    return [0] * _W_SLOTS


class BatchedHMCDevice(HMCDevice):
    """HMCDevice with deferred window accounting (the back-end engine)."""

    def __init__(
        self,
        config: Optional[HMCConfig] = None,
        telemetry=False,
        probes=None,
        spans=None,
    ) -> None:
        if telemetry is not False and telemetry is not None:
            raise ValueError(
                "BatchedHMCDevice records no per-packet telemetry; "
                "use HMCDevice (engine='reference') for telemetry runs"
            )
        if probes is not None and probes.enabled:
            raise ValueError(
                "BatchedHMCDevice defers all accounting past the probe "
                "windows; use HMCDevice (engine='reference') for probe runs"
            )
        if spans is not None and spans.enabled:
            raise ValueError(
                "BatchedHMCDevice materializes no per-packet segments; "
                "use HMCDevice (engine='reference') for span runs"
            )
        super().__init__(config, telemetry=False, probes=probes, spans=spans)
        self._w = _fresh_window()
        # Deferred latency accumulator: [count, total, min, max, sumsq].
        self._w_lat: List = [0, 0, inf, -inf, 0]

    # -- MemoryDevice protocol --------------------------------------------- #

    def submit(self, packet, cycle: int) -> int:
        """Reference timing maths, deferred accounting.

        The returned completion cycle (and all busy-horizon state) is
        bit-identical to :meth:`HMCDevice.submit`; the counter /
        energy / latency effects sit in the window until :meth:`sync`.
        """
        size = packet.size
        if size > self._max_packet_bytes:
            raise ValueError(
                f"packet of {size}B exceeds device maximum "
                f"{self._max_packet_bytes}B"
            )
        is_store = packet.op == MemOp.STORE
        flit_cache = self._flits_store if is_store else self._flits_load
        flits = flit_cache.get(size)
        if flits is None:
            flits = self._flits_for(size, is_store)
            flit_cache[size] = flits
        req_flits = flits.request
        rsp_flits = flits.response
        addr = packet.addr
        single_row = False
        if self._am_vault_first and addr >= 0:
            row_shift = self._am_row_shift
            row_index = addr >> row_shift
            vault = row_index & self._am_vault_mask
            vb = (
                vault,
                (row_index >> self._am_vault_shift) & self._am_bank_mask,
            )
            single_row = (addr + size - 1) >> row_shift == row_index
        else:
            vb = self._vault_bank(addr)
            vault = vb[0]
        w = self._w

        # 1. Link serialization (request direction).
        if self.route_by_address:
            link = vault % self._n_links
        else:
            links = self.links
            link = links._rr
            links._rr = (link + 1) % self._n_links
        req_busy = self._req_busy
        start = req_busy[link]
        if cycle > start:
            start = cycle
        t = start + req_flits * CYCLES_PER_FLIT
        req_busy[link] = t
        w[_W_REQ_FLITS] += req_flits

        # 2. Crossbar routing (energy deferred as FLIT counts).
        local = vault // self._vaults_per_link == link
        if local:
            t += LOCAL_ROUTE_CYCLES
            w[_W_LOCAL] += 1
            w[_W_LOCAL_FLITS] += req_flits + rsp_flits
        else:
            t += REMOTE_ROUTE_CYCLES
            w[_W_REMOTE] += 1
            w[_W_REMOTE_FLITS] += req_flits + rsp_flits

        # 3. Vault admission (slot cycles deferred as an int sum).
        arrival_at_vault = t
        vault_busy = self._vault_busy
        start = vault_busy[vault]
        if t > start:
            start = t
        t = start + VAULT_CTRL_CYCLES
        vault_busy[vault] = t
        w[_W_ADMITTED] += 1
        wait = start - arrival_at_vault
        if wait > 0:
            w[_W_QWAIT] += wait
        w[_W_RQST_SLOT] += t - arrival_at_vault + 1

        # 4. DRAM access. The multi-row fallback writes its counters
        # straight through BankArray.access — counter addition commutes,
        # so the post-sync totals still match the reference exactly.
        if single_row:
            busy_until = self._bank_busy_until
            busy = busy_until.get(vb, 0)
            if busy > t:
                w[_W_CONFLICTS] += 1
                start = busy
            else:
                start = t
            end = start + self._bank_cycles
            busy_until[vb] = end
            counts = self._bank_counts
            counts[vb] = counts.get(vb, 0) + 1
            w[_W_ACTIVATIONS] += 1
            t = end
            n_rows = 1
        else:
            t, n_rows = self.banks.access(addr, size, t, vb0=vb)
        w[_W_ACT_ROWS] += n_rows
        # Charged live, in packet order: see the module docstring.
        self._pj_store["DRAM-TRANSFER"] += size * self._pj_dram_transfer

        # 5. Response route + serialization.
        route_back = LOCAL_ROUTE_CYCLES if local else REMOTE_ROUTE_CYCLES
        response_ready = t + route_back
        rsp_busy = self._rsp_busy
        start = rsp_busy[link]
        if response_ready > start:
            start = response_ready
        completion = start + rsp_flits * CYCLES_PER_FLIT
        rsp_busy[link] = completion
        w[_W_RSP_FLITS] += rsp_flits
        w[_W_RSP_SLOT] += completion - t + 1

        # Accounting, deferred.
        w[_W_PACKETS] += 1
        w[_W_PAYLOAD] += size
        latency = completion - cycle
        lat = self._w_lat
        lat[0] += 1
        lat[1] += latency
        lat[4] += latency * latency
        if latency < lat[2]:
            lat[2] = latency
        if latency > lat[3]:
            lat[3] = latency
        return completion

    def submit_window(self, packets) -> List[int]:
        """Replay ``packets`` (each carrying ``issue_cycle``) in one
        hoisted-local sweep; merge accounting once; return completions.

        This is the array-processing surface the bench harness's
        isolated device stage drives: window counters live in plain
        local ints, busy horizons and bank maps in pre-bound locals,
        and the single :meth:`sync` at the end performs the only
        registry/energy writes of the whole window.
        """
        # Flush any scalar-submit residue first so the merge below owns
        # the window exclusively.
        self.sync()
        completions: List[int] = []
        out = completions.append

        max_packet = self._max_packet_bytes
        flits_load = self._flits_load
        flits_store = self._flits_store
        flits_for = self._flits_for
        store_op = MemOp.STORE
        am_vault_first = self._am_vault_first
        am_row_shift = self._am_row_shift
        am_vault_mask = self._am_vault_mask
        am_vault_shift = self._am_vault_shift
        am_bank_mask = self._am_bank_mask
        vault_bank = self._vault_bank
        route_by_address = self.route_by_address
        n_links = self._n_links
        vaults_per_link = self._vaults_per_link
        links = self.links
        rr = links._rr
        req_busy = self._req_busy
        rsp_busy = self._rsp_busy
        vault_busy = self._vault_busy
        bank_busy = self._bank_busy_until
        bank_counts = self._bank_counts
        bank_cycles = self._bank_cycles
        banks_access = self.banks.access
        pj_store = self._pj_store
        pj_transfer = self._pj_dram_transfer
        local_route = LOCAL_ROUTE_CYCLES
        remote_route = REMOTE_ROUTE_CYCLES
        ctrl_cycles = VAULT_CTRL_CYCLES
        per_flit = CYCLES_PER_FLIT

        w_packets = w_payload = 0
        w_req_flits = w_rsp_flits = 0
        w_local = w_remote = 0
        w_local_flits = w_remote_flits = 0
        w_qwait = w_rqst_slot = w_rsp_slot = 0
        w_conflicts = w_activations = w_act_rows = 0
        lat_n = lat_total = lat_sumsq = 0
        lat_min = inf
        lat_max = -inf

        for packet in packets:
            cycle = packet.issue_cycle
            size = packet.size
            if size > max_packet:
                raise ValueError(
                    f"packet of {size}B exceeds device maximum "
                    f"{max_packet}B"
                )
            is_store = packet.op == store_op
            flit_cache = flits_store if is_store else flits_load
            flits = flit_cache.get(size)
            if flits is None:
                flits = flits_for(size, is_store)
                flit_cache[size] = flits
            req_flits = flits.request
            rsp_flits = flits.response
            addr = packet.addr
            single_row = False
            if am_vault_first and addr >= 0:
                row_index = addr >> am_row_shift
                vault = row_index & am_vault_mask
                vb = (
                    vault,
                    (row_index >> am_vault_shift) & am_bank_mask,
                )
                single_row = (addr + size - 1) >> am_row_shift == row_index
            else:
                vb = vault_bank(addr)
                vault = vb[0]

            if route_by_address:
                link = vault % n_links
            else:
                link = rr
                rr = (link + 1) % n_links
            start = req_busy[link]
            if cycle > start:
                start = cycle
            t = start + req_flits * per_flit
            req_busy[link] = t
            w_req_flits += req_flits

            local = vault // vaults_per_link == link
            if local:
                t += local_route
                w_local += 1
                w_local_flits += req_flits + rsp_flits
            else:
                t += remote_route
                w_remote += 1
                w_remote_flits += req_flits + rsp_flits

            arrival_at_vault = t
            start = vault_busy[vault]
            if t > start:
                start = t
            t = start + ctrl_cycles
            vault_busy[vault] = t
            wait = start - arrival_at_vault
            if wait > 0:
                w_qwait += wait
            w_rqst_slot += t - arrival_at_vault + 1

            if single_row:
                busy = bank_busy.get(vb, 0)
                if busy > t:
                    w_conflicts += 1
                    start = busy
                else:
                    start = t
                end = start + bank_cycles
                bank_busy[vb] = end
                bank_counts[vb] = bank_counts.get(vb, 0) + 1
                w_activations += 1
                t = end
                n_rows = 1
            else:
                t, n_rows = banks_access(addr, size, t, vb0=vb)
            w_act_rows += n_rows
            pj_store["DRAM-TRANSFER"] += size * pj_transfer

            route_back = local_route if local else remote_route
            response_ready = t + route_back
            start = rsp_busy[link]
            if response_ready > start:
                start = response_ready
            completion = start + rsp_flits * per_flit
            rsp_busy[link] = completion
            w_rsp_flits += rsp_flits
            w_rsp_slot += completion - t + 1

            w_packets += 1
            w_payload += size
            latency = completion - cycle
            lat_n += 1
            lat_total += latency
            lat_sumsq += latency * latency
            if latency < lat_min:
                lat_min = latency
            if latency > lat_max:
                lat_max = latency
            out(completion)

        links._rr = rr
        w = self._w
        w[_W_PACKETS] = w_packets
        w[_W_PAYLOAD] = w_payload
        w[_W_REQ_FLITS] = w_req_flits
        w[_W_RSP_FLITS] = w_rsp_flits
        w[_W_LOCAL] = w_local
        w[_W_REMOTE] = w_remote
        w[_W_LOCAL_FLITS] = w_local_flits
        w[_W_REMOTE_FLITS] = w_remote_flits
        w[_W_ADMITTED] = w_packets
        w[_W_QWAIT] = w_qwait
        w[_W_RQST_SLOT] = w_rqst_slot
        w[_W_RSP_SLOT] = w_rsp_slot
        w[_W_CONFLICTS] = w_conflicts
        w[_W_ACTIVATIONS] = w_activations
        w[_W_ACT_ROWS] = w_act_rows
        lat = self._w_lat
        lat[0] = lat_n
        lat[1] = lat_total
        lat[2] = lat_min
        lat[3] = lat_max
        lat[4] = lat_sumsq
        self.sync()
        return completions

    # -- merge point -------------------------------------------------------- #

    def sync(self) -> None:
        """Merge the window accumulator into the shared registries.

        Counter merges are integer sums (order-free, exact); integer-pJ
        energy categories multiply their deferred quantity once (exact
        below 2**53); the latency accumulator merges exact-integer
        window sums. DRAM-TRANSFER never appears here — it charged
        live, per packet (see module docstring). Idempotent when the
        window is empty.
        """
        w = self._w
        self._c_packets.value += w[_W_PACKETS]
        self._c_payload.value += w[_W_PAYLOAD]
        self._c_txbytes.value += (
            w[_W_PAYLOAD] + HMC_CONTROL_OVERHEAD_BYTES * w[_W_PACKETS]
        )
        self._c_local_routes.value += w[_W_LOCAL]
        self._c_remote_routes.value += w[_W_REMOTE]
        self._lc_req_flits.value += w[_W_REQ_FLITS]
        self._lc_rsp_flits.value += w[_W_RSP_FLITS]
        self._vc_admitted.value += w[_W_ADMITTED]
        self._vc_queue_wait.value += w[_W_QWAIT]
        self._bc_conflicts.value += w[_W_CONFLICTS]
        self._bc_activations.value += w[_W_ACTIVATIONS]
        pj_store = self._pj_store
        pj_store["VAULT-RQST-SLOT"] += w[_W_RQST_SLOT] * self._pj_rqst_slot
        pj_store["VAULT-RSP-SLOT"] += w[_W_RSP_SLOT] * self._pj_rsp_slot
        pj_store["VAULT-CTRL"] += w[_W_PACKETS] * self._pj_vault_ctrl
        pj_store["LINK-LOCAL-ROUTE"] += (
            w[_W_LOCAL_FLITS] * self._pj_link_local
        )
        pj_store["LINK-REMOTE-ROUTE"] += (
            w[_W_REMOTE_FLITS] * self._pj_link_remote
        )
        pj_store["DRAM-ACTIVATE"] += w[_W_ACT_ROWS] * self._pj_dram_activate
        lat = self._w_lat
        if lat[0]:
            acc = self._acc_latency
            acc.count += lat[0]
            acc.total += lat[1]
            acc._sumsq += lat[4]
            if lat[2] < acc.min:
                acc.min = lat[2]
            if lat[3] > acc.max:
                acc.max = lat[3]
        self._w = _fresh_window()
        self._w_lat = [0, 0, inf, -inf, 0]


class BatchedHBMDevice(BatchedHMCDevice):
    """HBM twin: batched engine on the HBM-shaped geometry, with the
    address-routed (per-channel) link selection of
    :class:`repro.hmc.hbm.HBMDevice`."""

    def __init__(
        self,
        config: Optional[HMCConfig] = None,
        probes=None,
        spans=None,
    ) -> None:
        super().__init__(
            config if config is not None else hbm_config(),
            probes=probes,
            spans=spans,
        )
        self.route_by_address = True
