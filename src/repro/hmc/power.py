"""Per-operation energy model for the 3D-stacked device.

Tracks the exact categories the paper's Figure 13 reports —
VAULT-RQST-SLOT, VAULT-RSP-SLOT, VAULT-CTRL, LINK-LOCAL-ROUTE,
LINK-REMOTE-ROUTE — plus DRAM activation/transfer energy for the overall
totals (Figure 14). The constants are illustrative (HMC-literature-scale
picojoules); every result built on them is a *relative* saving, which is
what the paper reports.
"""

from __future__ import annotations

from typing import Dict

#: The Figure 13 operation categories, in presentation order.
ENERGY_CATEGORIES = (
    "VAULT-RQST-SLOT",
    "VAULT-RSP-SLOT",
    "VAULT-CTRL",
    "LINK-LOCAL-ROUTE",
    "LINK-REMOTE-ROUTE",
    "DRAM-ACTIVATE",
    "DRAM-TRANSFER",
)

#: Energy constants, picojoules. Slots are charged per cycle of queue
#: residency; routes per FLIT; ctrl per packet; activate per row;
#: transfer per byte moved on the TSVs.
ENERGY_PJ = {
    "VAULT-RQST-SLOT": 1.0,  # pJ per slot-cycle
    "VAULT-RSP-SLOT": 1.0,
    "VAULT-CTRL": 12.0,  # pJ per packet
    "LINK-LOCAL-ROUTE": 6.0,  # pJ per FLIT (SerDes dominates HMC power)
    "LINK-REMOTE-ROUTE": 16.0,  # pJ per FLIT: extra crossbar traversal
    "DRAM-ACTIVATE": 90.0,  # pJ per closed-page row activation
    "DRAM-TRANSFER": 1.2,  # pJ per byte through the TSVs
}


class EnergyModel:
    """Accumulates per-category energy for one device."""

    def __init__(self) -> None:
        self.picojoules: Dict[str, float] = {c: 0.0 for c in ENERGY_CATEGORIES}

    def charge(self, category: str, quantity: float) -> None:
        """Add ``quantity`` units of ``category`` work (cycles, FLITs,
        packets, rows, or bytes depending on the category)."""
        if category not in self.picojoules:
            raise KeyError(f"unknown energy category: {category}")
        if quantity < 0:
            raise ValueError("energy quantities are non-negative")
        self.picojoules[category] += quantity * ENERGY_PJ[category]

    def charger(self, category: str):
        """Pre-resolved charge handle for hot loops.

        Validates the category once; each call of the returned function
        performs the same ``+= quantity * pj`` arithmetic as
        :meth:`charge` (bit-identical accumulation, no per-call string
        lookup or validation).
        """
        if category not in self.picojoules:
            raise KeyError(f"unknown energy category: {category}")

        def _charge(
            quantity: float,
            _store: Dict[str, float] = self.picojoules,
            _cat: str = category,
            _pj: float = ENERGY_PJ[category],
        ) -> None:
            _store[_cat] += quantity * _pj

        return _charge

    @property
    def total_pj(self) -> float:
        return sum(self.picojoules.values())

    @property
    def total_nj(self) -> float:
        return self.total_pj / 1000.0

    def by_category(self) -> Dict[str, float]:
        return dict(self.picojoules)

    def merge_from(self, other: "EnergyModel") -> None:
        for cat, pj in other.picojoules.items():
            self.picojoules[cat] += pj

    def __eq__(self, other) -> bool:
        """Value equality, so RunResult comparisons (and the parallel ==
        serial determinism harness) see through the pickle round-trip."""
        return (
            isinstance(other, EnergyModel)
            and self.picojoules == other.picojoules
        )

    def __repr__(self) -> str:
        return f"EnergyModel(total={self.total_pj:.1f}pJ)"


def savings(baseline: EnergyModel, improved: EnergyModel) -> Dict[str, float]:
    """Fractional per-category savings of ``improved`` vs ``baseline``
    (the Figure 13 bars), plus ``"TOTAL"`` (Figure 14)."""
    out: Dict[str, float] = {}
    for cat in ENERGY_CATEGORIES:
        base = baseline.picojoules[cat]
        out[cat] = (base - improved.picojoules[cat]) / base if base else 0.0
    total_base = baseline.total_pj
    out["TOTAL"] = (
        (total_base - improved.total_pj) / total_base if total_base else 0.0
    )
    return out
