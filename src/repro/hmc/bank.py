"""DRAM banks with closed-page policy and exact conflict counting.

HMC DRAM follows a closed-page policy (Section 2.2.2): every access
activates its row, transfers, and precharges — the bank is busy for the
whole ``busy_cycles`` window and there is no open-row hit path. A packet
arriving while its bank is busy is a *bank conflict* and waits; a
256B-aligned coalesced packet touches its row exactly once, which is how
PAC removes the four-activations-per-row pathology of raw 64B requests
(Section 2.1.1).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.common.stats import StatsRegistry
from repro.mem.address import AddressMap
from repro.telemetry import NULL_TELEMETRY


class BankArray:
    """Busy-horizon model of every bank in the device."""

    def __init__(
        self,
        address_map: AddressMap,
        busy_cycles: int = 96,
        probes=NULL_TELEMETRY,
    ) -> None:
        if busy_cycles <= 0:
            raise ValueError("bank busy time must be positive")
        self.address_map = address_map
        self.busy_cycles = busy_cycles
        self._busy_until: Dict[Tuple[int, int], int] = {}
        self._access_counts: Dict[Tuple[int, int], int] = {}
        self.stats = StatsRegistry("banks")
        self._probes_on = probes.enabled
        self._t_conflicts = probes.counter("conflicts")
        self._t_activations = probes.counter("activations")
        self._t_conflict_wait = probes.gauge("conflict_wait")
        self._c_conflicts = self.stats.counter("conflicts")
        self._c_activations = self.stats.counter("activations")

    def access(
        self, addr: int, size: int, cycle: int,
        vb0: Optional[Tuple[int, int]] = None,
    ) -> Tuple[int, int]:
        """Perform a (possibly multi-row) access beginning at ``cycle``.

        Returns ``(finish_cycle, n_activations)``. Each spanned row is a
        separate closed-page activation on its own bank; conflicts are
        counted whenever the target bank is still busy on arrival.
        ``vb0`` optionally carries the caller's already-computed
        (vault, bank) of ``addr`` — every address within a row maps to the
        same pair, so the dominant single-row access skips re-locating.
        """
        n_rows = self.address_map.rows_spanned(addr, size)
        if n_rows == 1:
            key = vb0 if vb0 is not None else self.address_map.vault_bank(addr)
            busy = self._busy_until.get(key, 0)
            if busy > cycle:
                self._c_conflicts.value += 1
                if self._probes_on:
                    self._t_conflicts.add(cycle)
                    self._t_conflict_wait.observe(cycle, busy - cycle)
                start = busy
            else:
                start = cycle
            end = start + self.busy_cycles
            self._busy_until[key] = end
            self._access_counts[key] = self._access_counts.get(key, 0) + 1
            self._c_activations.value += 1
            if self._probes_on:
                self._t_activations.add(cycle)
            return end, 1
        row_bytes = self.address_map.row_bytes
        finish = cycle
        conflicts = self._c_conflicts
        activations = self._c_activations
        vault_bank = self.address_map.vault_bank
        busy_until = self._busy_until
        access_counts = self._access_counts
        first_row_addr = addr - (addr % row_bytes)
        for r in range(n_rows):
            key = vault_bank(first_row_addr + r * row_bytes)
            busy = busy_until.get(key, 0)
            if busy > cycle:
                conflicts.value += 1
                if self._probes_on:
                    self._t_conflicts.add(cycle)
                    self._t_conflict_wait.observe(cycle, busy - cycle)
                start = busy
            else:
                start = cycle
            end = start + self.busy_cycles
            busy_until[key] = end
            access_counts[key] = access_counts.get(key, 0) + 1
            activations.value += 1
            if self._probes_on:
                self._t_activations.add(cycle)
            finish = max(finish, end)
        return finish, n_rows

    def busy_until(self, vault: int, bank: int) -> int:
        return self._busy_until.get((vault, bank), 0)

    @property
    def total_conflicts(self) -> int:
        return self.stats.count("conflicts")

    @property
    def total_activations(self) -> int:
        return self.stats.count("activations")

    def bank_heat(self) -> Dict[Tuple[int, int], int]:
        """Activations per (vault, bank) — load-balance analysis."""
        return dict(self._access_counts)

    def busiest_banks(self, top: int = 8) -> list:
        """The ``top`` most-activated (vault, bank) pairs with counts."""
        return sorted(
            self._access_counts.items(), key=lambda kv: -kv[1]
        )[:top]
