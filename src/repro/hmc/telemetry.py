"""Per-packet latency telemetry for the HMC device.

When enabled, every packet records where its cycles went — link
serialization, crossbar route, vault queueing, DRAM access, response
return — plus its vault, so congestion can be localized. This is the
kind of insight HMC-Sim exposes and the paper uses to attribute savings
(vault queue power, link routing) to coalescing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.common.stats import percentile as _percentile


@dataclass(frozen=True)
class PacketRecord:
    """Latency breakdown for one serviced packet (all in cycles)."""

    addr: int
    size: int
    vault: int
    link: int
    remote: bool
    submit_cycle: int
    link_wait: int
    route: int
    vault_wait: int
    dram: int
    response: int

    @property
    def total(self) -> int:
        return (
            self.link_wait + self.route + self.vault_wait
            + self.dram + self.response
        )


class Telemetry:
    """Bounded recorder of :class:`PacketRecord` entries."""

    COMPONENTS = ("link_wait", "route", "vault_wait", "dram", "response")

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive or None")
        self.capacity = capacity
        self.records: List[PacketRecord] = []
        self.dropped = 0

    def record(self, rec: PacketRecord) -> None:
        if self.capacity is not None and len(self.records) >= self.capacity:
            self.dropped += 1
            return
        self.records.append(rec)

    def __len__(self) -> int:
        return len(self.records)

    # -- summaries --------------------------------------------------------- #

    def component_means(self) -> Dict[str, float]:
        """Mean cycles per latency component."""
        if not self.records:
            return {c: 0.0 for c in self.COMPONENTS}
        n = len(self.records)
        return {
            c: sum(getattr(r, c) for r in self.records) / n
            for c in self.COMPONENTS
        }

    def latency_percentiles(self) -> Dict[str, float]:
        totals = sorted(r.total for r in self.records)
        return {
            "p50": _percentile(totals, 0.50),
            "p95": _percentile(totals, 0.95),
            "p99": _percentile(totals, 0.99),
            "max": float(totals[-1]) if totals else 0.0,
        }

    def vault_heat(self) -> Dict[int, int]:
        """Packets serviced per vault — congestion localization."""
        heat: Dict[int, int] = {}
        for r in self.records:
            heat[r.vault] = heat.get(r.vault, 0) + 1
        return heat

    def remote_fraction(self) -> float:
        if not self.records:
            return 0.0
        return sum(r.remote for r in self.records) / len(self.records)

    def summary(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        out.update(
            {f"mean_{k}": v for k, v in self.component_means().items()}
        )
        out.update(self.latency_percentiles())
        out["remote_fraction"] = self.remote_fraction()
        out["n_records"] = float(len(self.records))
        return out
