"""Vault controllers: per-vault service queues on the logic die.

Each vault controller admits one packet at a time into its DRAM banks
and holds request/response packets in queue slots while they wait —
the VAULT-RQST-SLOT / VAULT-RSP-SLOT occupancy the paper's power figures
track (Figure 13).
"""

from __future__ import annotations

from typing import List

from repro.common.stats import StatsRegistry
from repro.telemetry import NULL_TELEMETRY

#: Vault controller processing overhead per packet, cycles.
VAULT_CTRL_CYCLES = 4


class VaultSet:
    """Busy-horizon model of the vault controllers."""

    def __init__(self, n_vaults: int = 32, probes=NULL_TELEMETRY) -> None:
        if n_vaults <= 0:
            raise ValueError("need at least one vault")
        self.n_vaults = n_vaults
        self._busy_until: List[int] = [0] * n_vaults
        self.stats = StatsRegistry("vaults")
        self._probes_on = probes.enabled
        self._t_queue_wait = probes.gauge("queue_wait")
        self._c_admitted = self.stats.counter("admitted")
        self._c_queue_wait = self.stats.counter("queue_wait_cycles")

    def admit(self, vault: int, cycle: int) -> int:
        """Pass a packet through the vault controller; returns the cycle
        DRAM access may begin. Queue wait = controller backlog."""
        start = max(cycle, self._busy_until[vault])
        done = start + VAULT_CTRL_CYCLES
        self._busy_until[vault] = done
        self._c_admitted.value += 1
        wait = start - cycle
        if wait > 0:
            self._c_queue_wait.value += wait
        if self._probes_on:
            self._t_queue_wait.observe(cycle, wait)
        return done

    def busy_until(self, vault: int) -> int:
        return self._busy_until[vault]
