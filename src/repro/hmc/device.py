"""The HMC device facade: links -> crossbar -> vaults -> banks, with
latency, bank-conflict, and energy accounting.

Implements the :class:`repro.mshr.dmc.MemoryDevice` protocol —
``submit(packet, cycle) -> completion_cycle`` — as a queueing model:

1. The controller picks the next SERDES link round-robin and serializes
   the request FLITs.
2. The crossbar routes to the target vault: a *local* hop if the vault
   sits in the link's quadrant, otherwise a costlier *remote* hop
   (Section 2.1.2).
3. The vault controller admits the packet (queue wait counted and
   charged as request-slot energy).
4. The banks perform the closed-page access; conflicts counted exactly.
5. The response routes and serializes back; response-slot energy covers
   its wait for the link.
"""

from __future__ import annotations

from typing import Optional

from repro.common.stats import StatsRegistry
from repro.common.types import (
    HMC_CONTROL_OVERHEAD_BYTES,
    CoalescedRequest,
    MemOp,
)
from repro.config import HMCConfig
from repro.hmc.bank import BankArray
from repro.hmc.link import CYCLES_PER_FLIT, LinkSet
from repro.hmc.power import ENERGY_PJ, EnergyModel
from repro.hmc.vault import VAULT_CTRL_CYCLES, VaultSet
from repro.mem.address import AddressMap

#: Crossbar traversal latencies, cycles.
LOCAL_ROUTE_CYCLES = 2
REMOTE_ROUTE_CYCLES = 8


class HMCDevice:
    """Cycle-approximate Hybrid Memory Cube.

    Pass ``telemetry=True`` (or a :class:`repro.hmc.telemetry.Telemetry`
    instance) to record a per-packet latency breakdown.
    """

    def __init__(
        self, config: Optional[HMCConfig] = None, telemetry=False, probes=None,
        spans=None,
    ) -> None:
        self.config = config if config is not None else HMCConfig()
        if telemetry is True:
            from repro.hmc.telemetry import Telemetry

            self.telemetry = Telemetry(capacity=200_000)
        elif telemetry is False or telemetry is None:
            self.telemetry = None
        else:
            # A caller-supplied Telemetry instance (may be empty, which
            # is falsy — compare by identity above, not truthiness).
            self.telemetry = telemetry
        if probes is None:
            from repro.telemetry import NULL_TELEMETRY

            probes = NULL_TELEMETRY
        if spans is None:
            from repro.telemetry import NULL_SPANS

            spans = NULL_SPANS
        self._spans = spans
        self._spans_on = spans.enabled
        cfg = self.config
        self.address_map = AddressMap(
            n_vaults=cfg.n_vaults,
            banks_per_vault=cfg.banks_per_vault,
            row_bytes=cfg.row_bytes,
            policy=cfg.address_policy,
        )
        self.links = LinkSet(
            cfg.n_links, cfg.n_vaults, probes=probes.scope("links")
        )
        self.vaults = VaultSet(cfg.n_vaults, probes=probes.scope("vaults"))
        self.banks = BankArray(
            self.address_map, cfg.bank_busy_cycles,
            probes=probes.scope("banks"),
        )
        self.energy = EnergyModel()
        self.stats = StatsRegistry("hmc")
        #: When True (HBM), a packet uses the channel its address maps to
        #: instead of the HMC controller's round-robin link choice.
        self.route_by_address = False
        self._probes_on = probes.enabled
        self._t_packets = probes.counter("packets")
        self._t_payload = probes.counter("payload_bytes")
        self._t_latency = probes.gauge("latency_cycles")
        self._t_energy = probes.counter("energy_pj")
        self._t_remote = probes.counter("remote_routes")
        # Pre-resolved hot-path handles: the energy store and per-category
        # pJ constants are bound once; ``submit`` performs the same
        # ``store[cat] += quantity * pj`` accumulation as
        # EnergyModel.charge (bit-identical, no per-packet call).
        energy = self.energy
        self._pj_store = energy.picojoules
        self._pj_link_local = ENERGY_PJ["LINK-LOCAL-ROUTE"]
        self._pj_link_remote = ENERGY_PJ["LINK-REMOTE-ROUTE"]
        self._pj_rqst_slot = ENERGY_PJ["VAULT-RQST-SLOT"]
        self._pj_rsp_slot = ENERGY_PJ["VAULT-RSP-SLOT"]
        self._pj_vault_ctrl = ENERGY_PJ["VAULT-CTRL"]
        self._pj_dram_activate = ENERGY_PJ["DRAM-ACTIVATE"]
        self._pj_dram_transfer = ENERGY_PJ["DRAM-TRANSFER"]
        stats = self.stats
        self._c_local_routes = stats.counter("local_routes")
        self._c_remote_routes = stats.counter("remote_routes")
        self._c_packets = stats.counter("packets")
        self._c_payload = stats.counter("payload_bytes")
        self._c_txbytes = stats.counter("transaction_bytes")
        self._acc_latency = stats.accumulator("latency_cycles")
        self._locate = self.address_map.locate
        self._vault_bank = self.address_map.vault_bank
        self._max_packet_bytes = cfg.max_packet_bytes
        # Inline (vault, bank) decomposition for the dominant power-of-two
        # vault-first mapping (same shift/mask arithmetic as
        # AddressMap.vault_bank); other modes — and negative addresses,
        # which must keep raising — fall back to the bound method.
        amap = self.address_map
        self._am_vault_first = amap._mode == AddressMap._MODE_VAULT_FIRST
        self._am_row_shift = amap._row_shift
        self._am_vault_mask = amap._vault_mask
        self._am_vault_shift = amap._vault_shift
        self._am_bank_mask = amap._bank_mask
        # Link/vault busy-horizon state, bound once. ``submit`` performs
        # the serialization/admission arithmetic inline (identical to
        # LinkSet.serialize_* / VaultSet.admit, which stay the canonical
        # definitions for direct users and tests).
        links = self.links
        vaults = self.vaults
        self._n_links = links.n_links
        self._vaults_per_link = links.vaults_per_link
        self._req_busy = links.req_busy_until
        self._rsp_busy = links.rsp_busy_until
        self._lc_req_flits = links._c_request_flits
        self._lc_rsp_flits = links._c_response_flits
        self._lt_req_flits = links._t_request_flits
        self._lt_rsp_flits = links._t_response_flits
        self._links_probes_on = links._probes_on
        self._vault_busy = vaults._busy_until
        self._vc_admitted = vaults._c_admitted
        self._vc_queue_wait = vaults._c_queue_wait
        self._vt_queue_wait = vaults._t_queue_wait
        self._vaults_probes_on = vaults._probes_on
        # Bank hot path, bound once: ``submit`` performs the dominant
        # single-row closed-page access inline (same arithmetic and
        # side effects as BankArray.access, which stays canonical for
        # multi-row spans and direct users).
        banks = self.banks
        self._bank_busy_until = banks._busy_until
        self._bank_counts = banks._access_counts
        self._bank_cycles = banks.busy_cycles
        self._bc_conflicts = banks._c_conflicts
        self._bc_activations = banks._c_activations
        self._bt_conflicts = banks._t_conflicts
        self._bt_activations = banks._t_activations
        self._bt_conflict_wait = banks._t_conflict_wait
        self._banks_probes_on = banks._probes_on
        # FLIT counts per (op-direction, size): packet sizes come from a
        # protocol-legal handful of values, so two tiny dicts replace the
        # per-packet lru_cache wrapper call.
        self._flits_load = {}
        self._flits_store = {}
        from repro.hmc.packet import _flits_for
        from repro.hmc.telemetry import PacketRecord

        self._flits_for = _flits_for
        self._packet_record = PacketRecord

    def submit(self, packet: CoalescedRequest, cycle: int) -> int:
        """Process one packet; returns the response-arrival cycle."""
        size = packet.size
        if size > self._max_packet_bytes:
            raise ValueError(
                f"packet of {size}B exceeds device maximum "
                f"{self._max_packet_bytes}B"
            )
        is_store = packet.op == MemOp.STORE
        flit_cache = self._flits_store if is_store else self._flits_load
        flits = flit_cache.get(size)
        if flits is None:
            flits = self._flits_for(size, is_store)
            flit_cache[size] = flits
        req_flits = flits.request
        rsp_flits = flits.response
        addr = packet.addr
        single_row = False
        if self._am_vault_first and addr >= 0:
            row_shift = self._am_row_shift
            row_index = addr >> row_shift
            vault = row_index & self._am_vault_mask
            vb = (
                vault,
                (row_index >> self._am_vault_shift) & self._am_bank_mask,
            )
            single_row = (addr + size - 1) >> row_shift == row_index
        else:
            vb = self._vault_bank(addr)
            vault = vb[0]
        pj_before = self.energy.total_pj if self._probes_on else 0.0

        # 1. Link serialization (request direction) — round-robin pick
        # and busy-horizon advance inlined from LinkSet.
        links = self.links
        if self.route_by_address:
            link = vault % self._n_links
        else:
            link = links._rr
            links._rr = (link + 1) % self._n_links
        req_busy = self._req_busy
        start = req_busy[link]
        if cycle > start:
            start = cycle
        t = start + req_flits * CYCLES_PER_FLIT
        req_busy[link] = t
        self._lc_req_flits.value += req_flits
        if self._links_probes_on:
            self._lt_req_flits.add(cycle, req_flits)
        link_done = t

        # 2. Crossbar routing. The route energy for both directions is
        # charged in one batch at step 5: the per-FLIT constants (6.0 and
        # 16.0 pJ) and FLIT counts are integers, so pj*(req+rsp) equals
        # pj*req + pj*rsp exactly and the accumulated total is
        # bit-identical to charging each direction separately.
        local = vault // self._vaults_per_link == link
        if local:
            t += LOCAL_ROUTE_CYCLES
            self._c_local_routes.value += 1
        else:
            t += REMOTE_ROUTE_CYCLES
            self._c_remote_routes.value += 1

        # 3. Vault controller admission; the packet holds a request slot
        # from crossbar arrival until DRAM access begins. Inlined from
        # VaultSet.admit.
        arrival_at_vault = t
        vault_busy = self._vault_busy
        start = vault_busy[vault]
        if t > start:
            start = t
        t = start + VAULT_CTRL_CYCLES
        vault_busy[vault] = t
        self._vc_admitted.value += 1
        wait = start - arrival_at_vault
        if wait > 0:
            self._vc_queue_wait.value += wait
        if self._vaults_probes_on:
            self._vt_queue_wait.observe(arrival_at_vault, wait)
        dram_start = t
        pj_store = self._pj_store
        pj_store["VAULT-RQST-SLOT"] += (
            (t - arrival_at_vault + 1) * self._pj_rqst_slot
        )
        pj_store["VAULT-CTRL"] += 1 * self._pj_vault_ctrl

        # 4. DRAM access (closed-page banks). The dominant single-row
        # case runs inline (same side effects as BankArray.access).
        if single_row:
            busy_until = self._bank_busy_until
            busy = busy_until.get(vb, 0)
            if busy > t:
                self._bc_conflicts.value += 1
                if self._banks_probes_on:
                    self._bt_conflicts.add(t)
                    self._bt_conflict_wait.observe(t, busy - t)
                start = busy
            else:
                start = t
            end = start + self._bank_cycles
            busy_until[vb] = end
            counts = self._bank_counts
            counts[vb] = counts.get(vb, 0) + 1
            self._bc_activations.value += 1
            if self._banks_probes_on:
                self._bt_activations.add(t)
            t = end
            n_rows = 1
        else:
            t, n_rows = self.banks.access(addr, size, t, vb0=vb)
        dram_done = t
        pj_store["DRAM-ACTIVATE"] += n_rows * self._pj_dram_activate
        pj_store["DRAM-TRANSFER"] += size * self._pj_dram_transfer

        # 5. Response: route back and serialize; the response occupies a
        # vault response slot until its last FLIT leaves the link.
        route_back = LOCAL_ROUTE_CYCLES if local else REMOTE_ROUTE_CYCLES
        if local:
            pj_store["LINK-LOCAL-ROUTE"] += (
                (req_flits + rsp_flits) * self._pj_link_local
            )
        else:
            pj_store["LINK-REMOTE-ROUTE"] += (
                (req_flits + rsp_flits) * self._pj_link_remote
            )
        response_ready = t + route_back
        rsp_busy = self._rsp_busy
        start = rsp_busy[link]
        if response_ready > start:
            start = response_ready
        completion = start + rsp_flits * CYCLES_PER_FLIT
        rsp_busy[link] = completion
        self._lc_rsp_flits.value += rsp_flits
        if self._links_probes_on:
            self._lt_rsp_flits.add(response_ready, rsp_flits)
        pj_store["VAULT-RSP-SLOT"] += (completion - t + 1) * self._pj_rsp_slot

        # Accounting (latency accumulation inlined from Accumulator.add).
        self._c_packets.value += 1
        self._c_payload.value += size
        self._c_txbytes.value += size + HMC_CONTROL_OVERHEAD_BYTES
        latency = completion - cycle
        acc = self._acc_latency
        acc.count += 1
        acc.total += latency
        acc._sumsq += latency * latency
        if latency < acc.min:
            acc.min = latency
        if latency > acc.max:
            acc.max = latency
        if self._probes_on:
            self._t_packets.add(cycle)
            self._t_payload.add(cycle, size)
            self._t_latency.observe(cycle, completion - cycle)
            self._t_energy.add(cycle, self.energy.total_pj - pj_before)
            if not local:
                self._t_remote.add(cycle)
        if self._spans_on:
            self._spans.device_span(
                packet,
                vault=vault,
                link=link,
                start=cycle,
                completion=completion,
                segments=(
                    ("link_wait", cycle, link_done),
                    ("route", link_done, arrival_at_vault),
                    ("vault_wait", arrival_at_vault, dram_start),
                    ("dram", dram_start, dram_done),
                    ("response", dram_done, completion),
                ),
            )
        if self.telemetry is not None:
            route_cycles = (
                LOCAL_ROUTE_CYCLES if local else REMOTE_ROUTE_CYCLES
            )
            self.telemetry.record(
                self._packet_record(
                    addr=packet.addr,
                    size=packet.size,
                    vault=vault,
                    link=link,
                    remote=not local,
                    submit_cycle=cycle,
                    link_wait=link_done - cycle,
                    route=route_cycles,
                    vault_wait=dram_start - arrival_at_vault,
                    dram=dram_done - dram_start,
                    response=completion - dram_done,
                )
            )
        return completion

    # -- convenience metrics -------------------------------------------------

    @property
    def bank_conflicts(self) -> int:
        return self.banks.total_conflicts

    @property
    def mean_latency_cycles(self) -> float:
        return self.stats.accumulator("latency_cycles").mean

    @property
    def total_transaction_bytes(self) -> int:
        return self.stats.count("transaction_bytes")

    @property
    def total_payload_bytes(self) -> int:
        return self.stats.count("payload_bytes")
