"""The HMC device facade: links -> crossbar -> vaults -> banks, with
latency, bank-conflict, and energy accounting.

Implements the :class:`repro.mshr.dmc.MemoryDevice` protocol —
``submit(packet, cycle) -> completion_cycle`` — as a queueing model:

1. The controller picks the next SERDES link round-robin and serializes
   the request FLITs.
2. The crossbar routes to the target vault: a *local* hop if the vault
   sits in the link's quadrant, otherwise a costlier *remote* hop
   (Section 2.1.2).
3. The vault controller admits the packet (queue wait counted and
   charged as request-slot energy).
4. The banks perform the closed-page access; conflicts counted exactly.
5. The response routes and serializes back; response-slot energy covers
   its wait for the link.
"""

from __future__ import annotations

from repro.common.stats import StatsRegistry
from repro.common.types import CoalescedRequest
from repro.config import HMCConfig
from repro.hmc.bank import BankArray
from repro.hmc.link import LinkSet
from repro.hmc.packet import packet_flits
from repro.hmc.power import EnergyModel
from repro.hmc.vault import VaultSet
from repro.mem.address import AddressMap

#: Crossbar traversal latencies, cycles.
LOCAL_ROUTE_CYCLES = 2
REMOTE_ROUTE_CYCLES = 8


class HMCDevice:
    """Cycle-approximate Hybrid Memory Cube.

    Pass ``telemetry=True`` (or a :class:`repro.hmc.telemetry.Telemetry`
    instance) to record a per-packet latency breakdown.
    """

    def __init__(
        self, config: HMCConfig = None, telemetry=False, probes=None,
        spans=None,
    ) -> None:
        self.config = config if config is not None else HMCConfig()
        if telemetry is True:
            from repro.hmc.telemetry import Telemetry

            self.telemetry = Telemetry(capacity=200_000)
        elif telemetry is False or telemetry is None:
            self.telemetry = None
        else:
            # A caller-supplied Telemetry instance (may be empty, which
            # is falsy — compare by identity above, not truthiness).
            self.telemetry = telemetry
        if probes is None:
            from repro.telemetry import NULL_TELEMETRY

            probes = NULL_TELEMETRY
        if spans is None:
            from repro.telemetry import NULL_SPANS

            spans = NULL_SPANS
        self._spans = spans
        self._spans_on = spans.enabled
        cfg = self.config
        self.address_map = AddressMap(
            n_vaults=cfg.n_vaults,
            banks_per_vault=cfg.banks_per_vault,
            row_bytes=cfg.row_bytes,
            policy=cfg.address_policy,
        )
        self.links = LinkSet(
            cfg.n_links, cfg.n_vaults, probes=probes.scope("links")
        )
        self.vaults = VaultSet(cfg.n_vaults, probes=probes.scope("vaults"))
        self.banks = BankArray(
            self.address_map, cfg.bank_busy_cycles,
            probes=probes.scope("banks"),
        )
        self.energy = EnergyModel()
        self.stats = StatsRegistry("hmc")
        #: When True (HBM), a packet uses the channel its address maps to
        #: instead of the HMC controller's round-robin link choice.
        self.route_by_address = False
        self._probes_on = probes.enabled
        self._t_packets = probes.counter("packets")
        self._t_payload = probes.counter("payload_bytes")
        self._t_latency = probes.gauge("latency_cycles")
        self._t_energy = probes.counter("energy_pj")
        self._t_remote = probes.counter("remote_routes")

    def submit(self, packet: CoalescedRequest, cycle: int) -> int:
        """Process one packet; returns the response-arrival cycle."""
        if packet.size > self.config.max_packet_bytes:
            raise ValueError(
                f"packet of {packet.size}B exceeds device maximum "
                f"{self.config.max_packet_bytes}B"
            )
        flits = packet_flits(packet)
        vault = self.address_map.locate(packet.addr).vault
        pj_before = self.energy.total_pj if self._probes_on else 0.0

        # 1. Link serialization (request direction).
        if self.route_by_address:
            link = vault % self.links.n_links
        else:
            link = self.links.next_link()
        t = self.links.serialize_request(link, flits.request, cycle)
        link_done = t

        # 2. Crossbar routing.
        local = self.links.is_local(link, vault)
        if local:
            t += LOCAL_ROUTE_CYCLES
            self.energy.charge("LINK-LOCAL-ROUTE", flits.request)
            self.stats.counter("local_routes").add()
        else:
            t += REMOTE_ROUTE_CYCLES
            self.energy.charge("LINK-REMOTE-ROUTE", flits.request)
            self.stats.counter("remote_routes").add()

        # 3. Vault controller admission; the packet holds a request slot
        # from crossbar arrival until DRAM access begins.
        arrival_at_vault = t
        t = self.vaults.admit(vault, t)
        dram_start = t
        self.energy.charge("VAULT-RQST-SLOT", t - arrival_at_vault + 1)
        self.energy.charge("VAULT-CTRL", 1)

        # 4. DRAM access (closed-page banks).
        t, n_rows = self.banks.access(packet.addr, packet.size, t)
        dram_done = t
        self.energy.charge("DRAM-ACTIVATE", n_rows)
        self.energy.charge("DRAM-TRANSFER", packet.size)

        # 5. Response: route back and serialize; the response occupies a
        # vault response slot until its last FLIT leaves the link.
        route_back = LOCAL_ROUTE_CYCLES if local else REMOTE_ROUTE_CYCLES
        if local:
            self.energy.charge("LINK-LOCAL-ROUTE", flits.response)
        else:
            self.energy.charge("LINK-REMOTE-ROUTE", flits.response)
        response_ready = t + route_back
        completion = self.links.serialize_response(
            link, flits.response, response_ready
        )
        self.energy.charge("VAULT-RSP-SLOT", completion - t + 1)

        # Accounting.
        self.stats.counter("packets").add()
        self.stats.counter("payload_bytes").add(packet.size)
        self.stats.counter("transaction_bytes").add(packet.transaction_bytes())
        self.stats.accumulator("latency_cycles").add(completion - cycle)
        if self._probes_on:
            self._t_packets.add(cycle)
            self._t_payload.add(cycle, packet.size)
            self._t_latency.observe(cycle, completion - cycle)
            self._t_energy.add(cycle, self.energy.total_pj - pj_before)
            if not local:
                self._t_remote.add(cycle)
        if self._spans_on:
            self._spans.device_span(
                packet,
                vault=vault,
                link=link,
                start=cycle,
                completion=completion,
                segments=(
                    ("link_wait", cycle, link_done),
                    ("route", link_done, arrival_at_vault),
                    ("vault_wait", arrival_at_vault, dram_start),
                    ("dram", dram_start, dram_done),
                    ("response", dram_done, completion),
                ),
            )
        if self.telemetry is not None:
            from repro.hmc.telemetry import PacketRecord

            route_cycles = (
                LOCAL_ROUTE_CYCLES if local else REMOTE_ROUTE_CYCLES
            )
            self.telemetry.record(
                PacketRecord(
                    addr=packet.addr,
                    size=packet.size,
                    vault=vault,
                    link=link,
                    remote=not local,
                    submit_cycle=cycle,
                    link_wait=link_done - cycle,
                    route=route_cycles,
                    vault_wait=dram_start - arrival_at_vault,
                    dram=dram_done - dram_start,
                    response=completion - dram_done,
                )
            )
        return completion

    # -- convenience metrics -------------------------------------------------

    @property
    def bank_conflicts(self) -> int:
        return self.banks.total_conflicts

    @property
    def mean_latency_cycles(self) -> float:
        return self.stats.accumulator("latency_cycles").mean

    @property
    def total_transaction_bytes(self) -> int:
        return self.stats.count("transaction_bytes")

    @property
    def total_payload_bytes(self) -> int:
        return self.stats.count("payload_bytes")
