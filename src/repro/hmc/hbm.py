"""HBM device variant (Section 4.1 portability).

HBM replaces packetized SERDES links with wide parallel pseudo-channels
and uses 1KB rows. We reuse the HMC machinery with an HBM-shaped
configuration: 8 channels standing in for links, 16 pseudo-channels as
"vaults", 1KB rows, and row-sized (1KB) maximum transfers. Routing is
always local (no internal crossbar between channels), so the
remote-route category stays at zero — a structural difference the power
results preserve.
"""

from __future__ import annotations

from typing import Optional

from repro.config import HMCConfig
from repro.hmc.device import HMCDevice


def hbm_config(
    n_channels: int = 8,
    banks_per_channel: int = 16,
    row_bytes: int = 1024,
) -> HMCConfig:
    """An :class:`HMCConfig` shaped like an HBM2 stack."""
    return HMCConfig(
        n_links=n_channels,
        n_vaults=n_channels,  # one "vault" per channel: all routing local
        banks_per_vault=banks_per_channel,
        row_bytes=row_bytes,
        max_packet_bytes=row_bytes,
        bank_busy_cycles=90,
        capacity_bytes=8 << 30,
    )


class HBMDevice(HMCDevice):
    """High Bandwidth Memory stack: HMC machinery, HBM geometry."""

    def __init__(
        self, config: Optional[HMCConfig] = None, probes=None, spans=None
    ) -> None:
        super().__init__(
            config if config is not None else hbm_config(), probes=probes,
            spans=spans,
        )
        self.route_by_address = True
