"""HMC transaction FLIT accounting.

Every HMC transaction is a request packet plus a complementary response
packet, each carrying a 16B header/tail control FLIT (Section 5.3.2):
32B of control overhead per transaction regardless of payload. Data
FLITs ride on the request for writes and on the response for reads.
"""

from __future__ import annotations

from functools import lru_cache
from typing import NamedTuple

from repro.common.types import FLIT_BYTES, CoalescedRequest, MemOp


class PacketFlits(NamedTuple):
    """FLIT counts for one transaction."""

    request: int
    response: int

    @property
    def total(self) -> int:
        return self.request + self.response

    @property
    def data(self) -> int:
        return self.total - 2


def data_flits(payload_bytes: int) -> int:
    """Payload FLITs, rounded up to whole 16B FLITs."""
    if payload_bytes < 0:
        raise ValueError("payload must be non-negative")
    return -(-payload_bytes // FLIT_BYTES)


@lru_cache(maxsize=None)
def _flits_for(size: int, is_store: bool) -> PacketFlits:
    # Packet sizes come from a protocol-legal set of a handful of values,
    # so the cache stays tiny while skipping the per-packet arithmetic.
    payload = data_flits(size)
    if is_store:
        return PacketFlits(request=1 + payload, response=1)
    return PacketFlits(request=1, response=1 + payload)


def packet_flits(packet: CoalescedRequest) -> PacketFlits:
    """Request/response FLIT counts for a coalesced packet.

    Reads: 1-FLIT request header, response = header + data.
    Writes: request = header + data, 1-FLIT response (the ack).
    """
    return _flits_for(packet.size, packet.op == MemOp.STORE)
