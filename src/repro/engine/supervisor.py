"""Supervised process-pool execution: timeouts, retries, crash recovery.

:class:`PoolSupervisor` owns a rebuildable :class:`ProcessPoolExecutor`
and runs batches of keyed jobs to completion under a self-healing
contract:

* **per-job wall-clock timeouts** — a worker observed running past the
  deadline is declared hung; the pool is torn down (hung workers cannot
  be interrupted any other way), rebuilt, and the hung job retried while
  innocent in-flight jobs are resubmitted without penalty;
* **crashed-worker replacement** — ``BrokenProcessPool`` (a worker died:
  segfault, OOM-kill, ``os._exit``) triggers the same teardown/rebuild,
  blaming the jobs that were observed running (or, if the crash landed
  before any observation, every in-flight job — conservative but
  bounded);
* **bounded retries with deterministic backoff** — each job is retried
  at most ``max_retries`` times with delay ``backoff_base * 2**(attempt-1)``
  (no jitter: chaos runs must be reproducible);
* **fallback degradation** — a job that exhausts its retries (or fails
  with a non-retryable error) is handed to an in-parent ``fallback``
  callable, the last rung of the degradation ladder.

Because every job is a pure function of its arguments, a retried or
degraded job produces a bit-identical result — supervision changes how
a result is obtained, never what it is. Everything the supervisor does
is recorded on a :class:`repro.engine.health.RunHealth`.
"""

from __future__ import annotations

import pickle
import time
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    CancelledError,
    ProcessPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.engine.health import RunHealth
from repro.telemetry import events as ev

#: Defaults, overridable per call and via the environment.
ENV_JOB_TIMEOUT = "REPRO_JOB_TIMEOUT"
ENV_MAX_RETRIES = "REPRO_MAX_RETRIES"
ENV_BACKOFF = "REPRO_BACKOFF"
DEFAULT_JOB_TIMEOUT = 300.0
DEFAULT_MAX_RETRIES = 3
DEFAULT_BACKOFF_BASE = 0.05

#: Failures worth retrying: environment/transport trouble (vanished
#: files or segments, transport pickling, dead workers, OOM), as
#: opposed to deterministic logic errors, which would fail identically
#: on every retry and go straight to the fallback.
RETRYABLE_EXCEPTIONS = (
    OSError,  # includes FileNotFoundError and TimeoutError
    EOFError,
    BrokenProcessPool,
    pickle.PickleError,
    MemoryError,
)


def _env_float(name: str, default: float) -> float:
    import os

    try:
        return float(os.environ.get(name, default))
    except (TypeError, ValueError):
        return default


def resolve_supervision(
    job_timeout: Optional[float] = None,
    max_retries: Optional[int] = None,
    backoff_base: Optional[float] = None,
):
    """Fill supervision knobs from arguments, then env, then defaults."""
    if job_timeout is None:
        job_timeout = _env_float(ENV_JOB_TIMEOUT, DEFAULT_JOB_TIMEOUT)
    if max_retries is None:
        max_retries = int(_env_float(ENV_MAX_RETRIES, DEFAULT_MAX_RETRIES))
    if backoff_base is None:
        backoff_base = _env_float(ENV_BACKOFF, DEFAULT_BACKOFF_BASE)
    return float(job_timeout), int(max_retries), float(backoff_base)


class SuiteExecutionError(RuntimeError):
    """A job failed terminally: retries exhausted and no fallback."""


@dataclass
class SupervisedJob:
    """One keyed unit of work.

    ``build_args`` maps the attempt number to the pickled argument
    tuple — rebuilt per attempt so fault contexts and degraded
    transports reach the worker deterministically.
    """

    key: object
    label: str
    build_args: Callable[[int], tuple]
    attempt: int = 0
    ready_at: float = field(default=0.0, compare=False)


class PoolSupervisor:
    """Runs :class:`SupervisedJob` batches on a self-healing pool."""

    def __init__(
        self,
        workers: int,
        health: RunHealth,
        job_timeout: Optional[float] = None,
        max_retries: Optional[int] = None,
        backoff_base: Optional[float] = None,
        tick: float = 0.05,
    ) -> None:
        self.workers = max(1, workers)
        self.health = health
        (
            self.job_timeout,
            self.max_retries,
            self.backoff_base,
        ) = resolve_supervision(job_timeout, max_retries, backoff_base)
        self.tick = tick
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pools_built = 0

    # -- pool lifecycle ------------------------------------------------

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
            self._pools_built += 1
            if self._pools_built > 1:
                self.health.pool_rebuilds += 1
                elog = ev.active()
                if elog.enabled:
                    elog.emit(ev.PoolRebuilt(
                        rebuilds=self.health.pool_rebuilds,
                    ))
        return self._pool

    def _discard_pool(self) -> None:
        """Tear the pool down hard (kills hung/compromised workers)."""
        pool, self._pool = self._pool, None
        if pool is None:
            return
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except TypeError:  # pragma: no cover - pre-3.9 signature
            pool.shutdown(wait=False)
        # _processes may already be None once the executor noticed the
        # break and cleaned up after itself.
        for proc in list((getattr(pool, "_processes", None) or {}).values()):
            try:
                proc.terminate()
            except Exception:  # pragma: no cover - already dead
                pass

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    # -- execution -----------------------------------------------------

    def run(
        self,
        fn: Callable,
        jobs: Sequence[SupervisedJob],
        fallback: Optional[Callable[[SupervisedJob], object]] = None,
        fallback_label: str = "serial",
        on_failure: Optional[Callable[[SupervisedJob, BaseException], None]] = None,
    ) -> Dict:
        """Run every job; return ``{job.key: fn(args)}``.

        ``fn`` must be a picklable module-level callable taking the args
        tuple. ``fallback`` runs a job in the parent when the pool path
        is exhausted; ``on_failure`` observes every failure before the
        retry decision (the parallel engine uses it to demote a
        benchmark's transport down the degradation ladder).
        """
        results: Dict = {}
        pending = deque(jobs)
        total = len(jobs)
        inflight: Dict = {}  # future -> job
        started: Dict = {}  # future -> first-observed-running monotonic
        elog = ev.active()

        def done_event(job: SupervisedJob) -> None:
            if elog.enabled:
                elog.emit(ev.JobCompleted(label=job.label))

        def fail(job: SupervisedJob, exc: BaseException) -> None:
            self.health.record_failure(job.label, exc)
            if elog.enabled:
                elog.emit(ev.JobFailed(
                    label=job.label,
                    error=type(exc).__name__,
                    attempt=job.attempt,
                ))
            if on_failure is not None:
                on_failure(job, exc)
            job.attempt += 1
            retryable = isinstance(exc, RETRYABLE_EXCEPTIONS)
            if retryable and job.attempt <= self.max_retries:
                self.health.retries += 1
                delay = self.backoff_base * (2 ** (job.attempt - 1))
                self.health.backoff_seconds += delay
                job.ready_at = time.monotonic() + delay
                if elog.enabled:
                    elog.emit(ev.JobRetried(
                        label=job.label, attempt=job.attempt, delay=delay,
                    ))
                pending.append(job)
                return
            if fallback is None:
                raise SuiteExecutionError(
                    f"job {job.label} failed terminally after "
                    f"{job.attempt} attempt(s): {exc!r}"
                ) from exc
            self.health.degradations.append(
                f"{fallback_label}:{job.label}"
            )
            if elog.enabled:
                elog.emit(ev.Demoted(
                    rung=fallback_label, label=job.label,
                ))
            results[job.key] = fallback(job)
            done_event(job)

        try:
            while len(results) < total:
                now = time.monotonic()
                pool = self._ensure_pool()

                # Submit every pending job whose backoff has elapsed.
                deferred: List[SupervisedJob] = []
                submit_failed = False
                while pending:
                    job = pending.popleft()
                    if job.ready_at > now:
                        deferred.append(job)
                        continue
                    try:
                        fut = pool.submit(fn, job.build_args(job.attempt))
                    except RuntimeError:
                        # Pool broke between loop top and submit.
                        deferred.append(job)
                        submit_failed = True
                        break
                    inflight[fut] = job
                pending.extend(deferred)
                if submit_failed:
                    self._requeue_inflight(inflight, started, pending, fail)
                    self._discard_pool()
                    continue

                if not inflight:
                    soonest = min(
                        (j.ready_at for j in pending), default=now
                    )
                    time.sleep(max(0.0, min(soonest - now, self.tick)))
                    continue

                done, _ = wait(
                    list(inflight), timeout=self.tick,
                    return_when=FIRST_COMPLETED,
                )

                pool_broken = False
                blamed_any = False
                unblamed: List[SupervisedJob] = []
                for fut in done:
                    job = inflight.pop(fut)
                    was_started = started.pop(fut, None) is not None
                    try:
                        results[job.key] = fut.result()
                        done_event(job)
                        continue
                    except BrokenProcessPool as exc:
                        pool_broken = True
                        if was_started:
                            blamed_any = True
                            fail(job, exc)
                        else:
                            unblamed.append(job)
                    except CancelledError:
                        pending.append(job)
                    except Exception as exc:
                        fail(job, exc)

                if pool_broken:
                    # Every future sharing the pool is compromised.
                    for fut, job in list(inflight.items()):
                        was_started = started.pop(fut, None) is not None
                        if was_started:
                            blamed_any = True
                            fail(job, BrokenProcessPool(
                                "pool broke while job was running"
                            ))
                        else:
                            unblamed.append(job)
                    inflight.clear()
                    started.clear()
                    if not blamed_any and unblamed:
                        # Crash landed before any job was observed
                        # running: charge everyone so a crash-at-entry
                        # fault cannot loop forever.
                        for job in unblamed:
                            fail(job, BrokenProcessPool(
                                "worker crashed before observation"
                            ))
                    else:
                        pending.extend(unblamed)
                    self._discard_pool()
                    continue

                # Wall-clock watchdog over running futures.
                now = time.monotonic()
                for fut in inflight:
                    if fut not in started and fut.running():
                        started[fut] = now
                hung = [
                    (fut, job)
                    for fut, job in inflight.items()
                    if fut in started
                    and now - started[fut] > self.job_timeout
                ]
                if hung:
                    self.health.timeouts += len(hung)
                    for fut, job in hung:
                        inflight.pop(fut)
                        started.pop(fut, None)
                        if elog.enabled:
                            elog.emit(ev.JobTimedOut(
                                label=job.label,
                                timeout=self.job_timeout,
                            ))
                        fail(job, TimeoutError(
                            f"job exceeded {self.job_timeout:.1f}s "
                            f"wall-clock timeout"
                        ))
                    # Killing the pool is the only way to stop a hung
                    # worker; the other in-flight jobs are innocent and
                    # resubmit without an attempt charge.
                    self._requeue_inflight(inflight, started, pending, fail)
                    self._discard_pool()
        except BaseException:
            self._discard_pool()
            raise
        return results

    @staticmethod
    def _requeue_inflight(inflight, started, pending, fail) -> None:
        for job in inflight.values():
            pending.append(job)
        inflight.clear()
        started.clear()


def run_serial_with_retries(
    fn: Callable,
    jobs: Sequence[SupervisedJob],
    health: RunHealth,
    max_retries: Optional[int] = None,
    backoff_base: Optional[float] = None,
) -> Dict:
    """In-parent analogue of :meth:`PoolSupervisor.run` for serial
    execution: bounded retries with the same deterministic backoff (no
    timeouts — a hung parent cannot supervise itself)."""
    _, max_retries, backoff_base = resolve_supervision(
        None, max_retries, backoff_base
    )
    results: Dict = {}
    elog = ev.active()
    for job in jobs:
        while True:
            try:
                results[job.key] = fn(job.build_args(job.attempt))
                if elog.enabled:
                    elog.emit(ev.JobCompleted(label=job.label))
                break
            except RETRYABLE_EXCEPTIONS as exc:
                health.record_failure(job.label, exc)
                if elog.enabled:
                    elog.emit(ev.JobFailed(
                        label=job.label,
                        error=type(exc).__name__,
                        attempt=job.attempt,
                    ))
                job.attempt += 1
                if job.attempt > max_retries:
                    raise SuiteExecutionError(
                        f"job {job.label} failed terminally after "
                        f"{job.attempt} attempt(s): {exc!r}"
                    ) from exc
                health.retries += 1
                delay = backoff_base * (2 ** (job.attempt - 1))
                health.backoff_seconds += delay
                if elog.enabled:
                    elog.emit(ev.JobRetried(
                        label=job.label, attempt=job.attempt, delay=delay,
                    ))
                time.sleep(delay)
    return results
