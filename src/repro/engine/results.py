"""Run results and derived metrics.

A :class:`RunResult` bundles everything one simulation produces; the
experiment harness (:mod:`repro.experiments`) combines results across
coalescer configurations to regenerate the paper's figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.hmc.power import EnergyModel
from repro.mshr.dmc import CoalesceOutcome


@dataclass
class RunResult:
    """Everything measured in one (workload, coalescer) simulation."""

    benchmark: str
    coalescer: str
    n_accesses: int
    n_raw: int
    n_issued: int
    n_merged: int
    coalescing_efficiency: float
    transaction_efficiency: float
    payload_bytes: int
    transaction_bytes: int
    bank_conflicts: int
    bank_activations: int
    comparisons: int
    stall_cycles: int
    runtime_cycles: int
    mean_memory_latency_cycles: float
    energy: EnergyModel
    #: PAC-only extras (None for the baselines).
    pac_metrics: Optional[Dict[str, float]] = None
    #: Cache-front-end composition: hit rates and raw-stream mix
    #: (demand / secondary / prefetch / write-back fractions).
    cache_metrics: Optional[Dict[str, float]] = None

    #: Trace end cycle (set by build_result; used by the latency-bound
    #: runtime model).
    trace_end_cycle: int = 0
    #: Mean coalescer-added latency per request (PAC's aggregation wait;
    #: 0 for the baselines).
    coalescer_latency_cycles: float = 0.0
    #: Exact mean cycles from a raw request's arrival to its data return
    #: (covering packet's completion) — measured per raw request by the
    #: coalescer. 0 when unavailable.
    mean_raw_service_cycles: float = 0.0
    #: Windowed telemetry collected during the run
    #: (:class:`repro.telemetry.TelemetryRegistry`); None unless the
    #: system was built with ``telemetry=True``. Participates in ``==``,
    #: so the determinism harness compares full timelines.
    telemetry: Optional[object] = None
    #: Per-request span trace (:class:`repro.telemetry.SpanTrace`); None
    #: unless the system was built with ``spans=True``. A frozen
    #: dataclass of plain data, so it participates in ``==`` and the
    #: determinism harness compares full span sets.
    spans: Optional[object] = None
    #: Execution-health report for the suite run that produced this
    #: result (:class:`repro.engine.health.RunHealth`); None for direct
    #: single runs. Excluded from ``==``: supervision bookkeeping (how
    #: the result was obtained), never simulation output — a recovered
    #: run must compare equal to a fault-free one.
    health: Optional[object] = field(default=None, compare=False, repr=False)

    @property
    def miss_rate(self) -> float:
        return self.n_raw / self.n_accesses if self.n_accesses else 0.0

    @property
    def latency_bound_runtime_cycles(self) -> float:
        """Runtime under an in-order-core model: each core blocks on each
        of its own demand misses for the mean memory latency (plus any
        coalescer aggregation wait), with no overlap across misses of one
        core. This is the regime the paper's Spike-based evaluation ran
        in — its modest (≤26%) gains come from *latency* reduction, not
        throughput. Complements :attr:`runtime_cycles`, which is the
        throughput-bound (open-loop) view.
        """
        n_cores = 8  # Table 1; per-core miss counts are ~uniform
        # The in-order counterfactual: each miss costs the device's mean
        # response latency plus the coalescer's aggregation wait. (The
        # measured open-loop per-request service time,
        # ``mean_raw_service_cycles``, is NOT used here: under open-loop
        # drive the arms queue their backlogs in different places —
        # before entry for the baselines, inside the MAQ for PAC — so it
        # does not compare like for like.)
        per_request = (
            self.mean_memory_latency_cycles + self.coalescer_latency_cycles
        )
        return self.trace_end_cycle + (self.n_raw / n_cores) * per_request

    def latency_bound_speedup_over(self, baseline: "RunResult") -> float:
        """Figure 15 under the in-order (latency-bound) runtime model."""
        mine = self.latency_bound_runtime_cycles
        if mine <= 0:
            return 0.0
        return baseline.latency_bound_runtime_cycles / mine - 1.0

    @property
    def mean_packet_bytes(self) -> float:
        return self.payload_bytes / self.n_issued if self.n_issued else 0.0

    def speedup_over(self, baseline: "RunResult") -> float:
        """Runtime improvement vs a baseline run of the same trace
        (Figure 15's performance gain): >0 means faster."""
        if self.runtime_cycles <= 0:
            return 0.0
        return baseline.runtime_cycles / self.runtime_cycles - 1.0

    def bank_conflict_reduction(self, baseline: "RunResult") -> float:
        """Fraction of the baseline's bank conflicts eliminated
        (Figure 6c)."""
        if baseline.bank_conflicts == 0:
            return 0.0
        return 1.0 - self.bank_conflicts / baseline.bank_conflicts

    def comparison_reduction(self, baseline: "RunResult") -> float:
        """Fraction of the baseline's comparator work eliminated
        (Figure 7)."""
        if baseline.comparisons == 0:
            return 0.0
        return 1.0 - self.comparisons / baseline.comparisons

    def bandwidth_saving_bytes(self, baseline: "RunResult") -> int:
        """Total transaction bytes avoided vs the baseline — redundant
        same-block transfers plus per-packet control overhead
        (Figure 10c)."""
        return baseline.transaction_bytes - self.transaction_bytes

    def energy_saving(self, baseline: "RunResult") -> float:
        """Fractional total energy saving vs the baseline (Figure 14)."""
        base = baseline.energy.total_pj
        if base <= 0:
            return 0.0
        return 1.0 - self.energy.total_pj / base

    def as_row(self) -> Dict[str, float]:
        """Flat scalar view for tabular reporting."""
        row = {
            "benchmark": self.benchmark,
            "coalescer": self.coalescer,
            "n_accesses": self.n_accesses,
            "n_raw": self.n_raw,
            "n_issued": self.n_issued,
            "coalescing_efficiency": self.coalescing_efficiency,
            "transaction_efficiency": self.transaction_efficiency,
            "bank_conflicts": self.bank_conflicts,
            "runtime_cycles": self.runtime_cycles,
            "energy_nj": self.energy.total_nj,
        }
        if self.pac_metrics:
            row.update({f"pac.{k}": v for k, v in self.pac_metrics.items()})
        return row

    def to_dict(self) -> Dict:
        """Full machine-readable view (JSON-safe)."""
        out = {
            **self.as_row(),
            "n_merged": self.n_merged,
            "miss_rate": self.miss_rate,
            "mean_packet_bytes": self.mean_packet_bytes,
            "payload_bytes": self.payload_bytes,
            "transaction_bytes": self.transaction_bytes,
            "bank_activations": self.bank_activations,
            "comparisons": self.comparisons,
            "stall_cycles": self.stall_cycles,
            "mean_memory_latency_cycles": self.mean_memory_latency_cycles,
            "mean_raw_service_cycles": self.mean_raw_service_cycles,
            "latency_bound_runtime_cycles": self.latency_bound_runtime_cycles,
            "energy_pj_by_category": self.energy.by_category(),
        }
        if self.cache_metrics:
            out["cache"] = dict(self.cache_metrics)
        if self.telemetry is not None:
            out["telemetry"] = self.telemetry.as_dict()
        if self.spans is not None:
            out["spans"] = self.spans.as_dict()
        if self.health is not None:
            out["health"] = self.health.as_dict()
        return out

    def to_json(self, indent: Optional[int] = None) -> str:
        import json

        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)


def build_result(
    benchmark: str,
    coalescer_name: str,
    n_accesses: int,
    outcome: CoalesceOutcome,
    device,
    trace_end_cycle: int,
    pac_metrics: Optional[Dict[str, float]] = None,
    cache_metrics: Optional[Dict[str, float]] = None,
    telemetry=None,
    spans=None,
) -> RunResult:
    """Assemble a :class:`RunResult` from a coalescer outcome + device."""
    # The run ends when the CPU trace ends or the last memory response
    # arrives, whichever is later; stall_cycles is the *total* queueing
    # delay across requests (a congestion indicator, not wall time).
    runtime = max(trace_end_cycle, outcome.last_completion_cycle)
    coalescer_latency = (
        pac_metrics.get("mean_request_latency", 0.0) if pac_metrics else 0.0
    )
    # payload/transaction totals are O(n_issued) property walks — take
    # each once and derive the efficiency from the same pair.
    payload_bytes = outcome.payload_bytes
    transaction_bytes = outcome.transaction_bytes
    transaction_efficiency = (
        payload_bytes / transaction_bytes if transaction_bytes else 0.0
    )
    return RunResult(
        trace_end_cycle=trace_end_cycle,
        coalescer_latency_cycles=coalescer_latency,
        mean_raw_service_cycles=outcome.mean_raw_service_cycles,
        benchmark=benchmark,
        coalescer=coalescer_name,
        n_accesses=n_accesses,
        n_raw=outcome.n_raw,
        n_issued=outcome.n_issued,
        n_merged=outcome.n_merged,
        coalescing_efficiency=outcome.coalescing_efficiency,
        transaction_efficiency=transaction_efficiency,
        payload_bytes=payload_bytes,
        transaction_bytes=transaction_bytes,
        bank_conflicts=device.bank_conflicts,
        bank_activations=device.banks.total_activations,
        comparisons=outcome.comparisons,
        stall_cycles=outcome.stall_cycles,
        runtime_cycles=runtime,
        mean_memory_latency_cycles=device.mean_latency_cycles,
        energy=device.energy,
        pac_metrics=pac_metrics,
        cache_metrics=cache_metrics,
        telemetry=telemetry,
        spans=spans,
    )
