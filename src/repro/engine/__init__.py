"""End-to-end simulation engine."""

from repro.engine.system import CoalescerKind, System
from repro.engine.results import RunResult, build_result
from repro.engine.health import RunHealth
from repro.engine.supervisor import SuiteExecutionError
from repro.engine.driver import (
    DEFAULT_ACCESSES,
    run_benchmark,
    run_comparison,
    run_suite,
)

__all__ = [
    "CoalescerKind",
    "System",
    "RunResult",
    "RunHealth",
    "SuiteExecutionError",
    "build_result",
    "DEFAULT_ACCESSES",
    "run_benchmark",
    "run_comparison",
    "run_suite",
]
