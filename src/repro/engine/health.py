"""Structured execution-health reporting for supervised suite runs.

A :class:`RunHealth` records everything the self-healing layer did to
get a suite to completion — retries, per-job timeouts, crashed-worker
pool rebuilds, degradation-ladder transitions, backoff, timings — and
whether any shared-memory segment failed unlink verification. It rides
on :attr:`repro.engine.results.RunResult.health` (excluded from ``==``:
recovery bookkeeping, never simulation output) and in the ``stats``
dict of :func:`repro.engine.parallel.run_suite_parallel`, and surfaces
through telemetry gauges (:func:`repro.telemetry.record_health`) and
the ``repro health`` CLI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class RunHealth:
    """What supervision observed and did during one suite run."""

    #: Total jobs the run fanned out, and how many completed (fallbacks
    #: included; ``jobs != completed`` means the run failed).
    jobs: int = 0
    completed: int = 0
    #: Re-executions of failed/timed-out jobs (bounded per job).
    retries: int = 0
    #: Jobs whose worker exceeded the per-job wall-clock timeout.
    timeouts: int = 0
    #: Pool teardown+rebuild cycles (worker crash or hung-worker kill).
    pool_rebuilds: int = 0
    #: Total deterministic backoff scheduled before retries (seconds).
    backoff_seconds: float = 0.0
    #: Degradation-ladder transitions, e.g. ``"shm->per-job:gs"`` or
    #: ``"serial:gs/pac"``.
    degradations: List[str] = field(default_factory=list)
    #: Individual job failures as ``"label:ExceptionType"``.
    failures: List[str] = field(default_factory=list)
    #: Shared-memory segments that failed unlink verification.
    shm_leaks: List[str] = field(default_factory=list)
    #: Phase timings (wall seconds).
    phase1_seconds: float = 0.0
    phase2_seconds: float = 0.0
    wall_seconds: float = 0.0
    #: Whether a fault plan was active for this run.
    faults_enabled: bool = False

    @property
    def healthy(self) -> bool:
        """Every job completed and nothing leaked. Retries and
        degradations do NOT make a run unhealthy — surviving them is
        the point — but they are visible in :attr:`degraded`."""
        return self.completed == self.jobs and not self.shm_leaks

    @property
    def degraded(self) -> bool:
        return bool(self.degradations)

    @property
    def events(self) -> int:
        """Total recovery actions taken (0 on a clean fast-path run)."""
        return (
            self.retries
            + self.timeouts
            + self.pool_rebuilds
            + len(self.degradations)
        )

    def record_failure(self, label: str, exc: BaseException) -> None:
        self.failures.append(f"{label}:{type(exc).__name__}")

    def as_dict(self) -> Dict:
        """JSON-safe view (the ``repro health --json`` payload)."""
        return {
            "jobs": self.jobs,
            "completed": self.completed,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "pool_rebuilds": self.pool_rebuilds,
            "backoff_seconds": self.backoff_seconds,
            "degradations": list(self.degradations),
            "failures": list(self.failures),
            "shm_leaks": list(self.shm_leaks),
            "phase1_seconds": self.phase1_seconds,
            "phase2_seconds": self.phase2_seconds,
            "wall_seconds": self.wall_seconds,
            "faults_enabled": self.faults_enabled,
            "healthy": self.healthy,
            "degraded": self.degraded,
            "events": self.events,
        }

    def summary_rows(self) -> List[Dict]:
        """Tabular view for the CLI."""
        d = self.as_dict()
        keep = (
            "jobs", "completed", "retries", "timeouts", "pool_rebuilds",
            "backoff_seconds", "phase1_seconds", "phase2_seconds",
            "wall_seconds", "faults_enabled", "degraded", "healthy",
        )
        return [
            {
                "metric": name,
                # Pre-format durations: the table renderer shows bare
                # floats below 1.0 as percentages.
                "value": (
                    f"{d[name]:.3f}s" if name.endswith("_seconds")
                    else d[name]
                ),
            }
            for name in keep
        ]
