"""Parallel suite execution: a supervised two-phase pipeline.

A full evaluation is ~50 (benchmark, arm) simulations, but only the
coalescer+device half differs between arms — the trace and the
cache-hierarchy pass are deterministic in (seed, config) and identical
across arms. :func:`run_suite_parallel` therefore runs in two phases:

* **Phase 1** computes each benchmark's trace + cache pass exactly once
  (per benchmark, not per arm), consulting the content-addressed
  artifact cache (:mod:`repro.artifacts`) so repeated suites skip the
  prefix entirely.
* **Phase 2** fans the (benchmark × arm) coalescer+device jobs over a
  persistent process pool. Each benchmark's raw request stream is
  packed once into an array-of-structs buffer and published through
  ``multiprocessing.shared_memory`` — workers map the parent's pages
  instead of unpickling tens of thousands of request objects per job.

Both phases run under :class:`repro.engine.supervisor.PoolSupervisor`:
per-job wall-clock timeouts, bounded deterministic-backoff retries, and
crashed-worker pool rebuilds. When the fast path faults, execution
walks a degradation ladder —

    shm fan-out  →  pickled per-job transport  →  in-parent serial

— per benchmark (transport demotion on segment loss or publish
failure) and per job (serial fallback once retries exhaust). Every job
is a pure function of its arguments, so recovered runs are bit-identical
to fault-free runs; everything supervision did is reported on the
:class:`repro.engine.health.RunHealth` attached to each result and to
``stats["health"]``. Deterministic fault injection for all of the above
lives in :mod:`repro.faults` (``$REPRO_FAULTS`` / ``faults=``).

Every run still derives its RNG from ``(seed, benchmark)``, and probes
(telemetry/spans) force the legacy one-job-per-arm end-to-end path, so
results are bit-identical across serial / pooled / cached / degraded
execution.
"""

from __future__ import annotations

import json
import os
import time
from collections import OrderedDict
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.config import SimulationConfig, TABLE1
from repro.engine.driver import DEFAULT_ACCESSES, run_benchmark
from repro.engine.health import RunHealth
from repro.engine.results import RunResult
from repro.engine.supervisor import (
    PoolSupervisor,
    SuiteExecutionError,
    SupervisedJob,
    run_serial_with_retries,
)
from repro.engine.system import CoalescerKind
from repro.faults import (
    FaultInjector,
    NullInjector,
    installed,
    job_scope,
    resolve_plan,
)
from repro.telemetry import events as ev
from repro.workloads import BENCHMARK_NAMES

__all__ = ["run_suite_parallel", "SuiteExecutionError"]


#: Fallback relative wall-clock weight of each (benchmark, arm) job,
#: used when no bench baseline is available. Scheduling only (longest
#: expected first) — results are keyed and bit-identical regardless of
#: order.
_BENCH_COST = {
    "gs": 12.0, "bfs": 4.0, "pagerank": 4.0, "ssca2": 3.0,
    "nas-cg": 2.0, "stream": 1.5, "hpcg": 1.0,
}
_ARM_COST = {"pac": 3.0, "sortdmc": 2.0, "dmc": 1.5, "none": 1.0}

#: Env override for the bench baseline the scheduler weights come from.
ENV_BENCH_BASELINE = "REPRO_BENCH_BASELINE"

_bench_weights_cache: Optional[Dict[str, float]] = None


def _bench_weights() -> Dict[str, float]:
    """Per-benchmark scheduling weights from the measured bench baseline.

    ``BENCH_baseline.json`` (env override, cwd, then repo root) records
    measured end-to-end seconds per benchmark; those replace the
    hand-maintained :data:`_BENCH_COST` guesses. Unknown benchmarks and
    missing/unparsable baselines fall back to the constants.
    """
    global _bench_weights_cache
    if _bench_weights_cache is not None:
        return _bench_weights_cache
    weights = dict(_BENCH_COST)
    candidates: List[Path] = []
    env = os.environ.get(ENV_BENCH_BASELINE)
    if env:
        candidates.append(Path(env))
    candidates.append(Path.cwd() / "BENCH_baseline.json")
    candidates.append(Path(__file__).resolve().parents[3] / "BENCH_baseline.json")
    for path in candidates:
        try:
            report = json.loads(path.read_text())
            measured = {
                name: float(entry["seconds"])
                for name, entry in report.get("end_to_end", {}).items()
                if float(entry.get("seconds", 0.0)) > 0.0
            }
        except (OSError, ValueError, KeyError, TypeError):
            continue
        if measured:
            # Normalize so the lightest measured benchmark sits at 1.0,
            # keeping measured and fallback weights on the same scale.
            floor = min(measured.values())
            weights.update(
                {name: secs / floor for name, secs in measured.items()}
            )
            break
    _bench_weights_cache = weights
    return weights


def _job_cost(benchmark: str, kind_value: str) -> float:
    # Multi-benchmark labels ("gs+bfs") cost roughly the sum of parts.
    weights = _bench_weights()
    bench_w = sum(weights.get(part, 2.0) for part in benchmark.split("+"))
    return bench_w * _ARM_COST.get(kind_value, 2.0)


# --------------------------------------------------------------------- #
# legacy per-job path (probe runs, and explicit pipeline="per-job")


def _run_one(args: tuple) -> Tuple[Tuple[str, str], RunResult]:
    (
        benchmark, kind_value, n_accesses, config, seed, device, telemetry,
        spans, protocol, fine_grain, scale, extra_benchmarks, engine,
        fault_ctx,
    ) = args
    from repro.engine.system import System

    with job_scope(fault_ctx, "perjob.job"):
        # faults=False: the job-entry fault already fired above, and the
        # driver must not resolve $REPRO_FAULTS into a second
        # (process-scoped) injector inside the worker.
        result = run_benchmark(
            benchmark,
            coalescer=CoalescerKind(kind_value),
            n_accesses=n_accesses,
            config=config,
            seed=seed,
            device=device,
            telemetry=telemetry,
            spans=spans,
            protocol=protocol,
            fine_grain=fine_grain,
            scale=scale,
            extra_benchmarks=extra_benchmarks,
            engine=System.arm_engine(CoalescerKind(kind_value), engine),
            faults=False,
        )
    return (benchmark, kind_value), result


# --------------------------------------------------------------------- #
# two-phase path


def _phase1_job(args: tuple):
    """Pool worker: compute (or load) one benchmark's trace pass.

    Artifact writes happen in the worker; the packed stream returns to
    the parent as a single contiguous buffer.
    """
    (
        benchmark, n_accesses, config, seed, device, scale,
        extra_benchmarks, fine_grain, use_cache, engine, fault_ctx,
    ) = args
    from repro.artifacts import load_or_compute_trace_pass

    with job_scope(fault_ctx, "phase1.job"):
        tp = load_or_compute_trace_pass(
            benchmark, n_accesses, config=config, seed=seed, device=device,
            scale=scale, extra_benchmarks=extra_benchmarks,
            fine_grain=fine_grain, use_cache=use_cache, engine=engine,
        )
    return benchmark, tp


#: Worker-side decoded-stream memo, keyed by shared-memory segment name.
#: A pool worker runs several arms of the same benchmark back to back;
#: decoding the stream once per segment (not once per job) makes the
#: extra arms nearly free. Bounded: a suite fans out over only a handful
#: of distinct segments at a time.
_DECODE_MEMO: "OrderedDict[str, list]" = OrderedDict()
_DECODE_MEMO_CAP = 4


def _decode_shared(shm_name: str, n_items: int) -> list:
    from repro.artifacts import shm as shm_codec

    cached = _DECODE_MEMO.get(shm_name)
    if cached is not None:
        _DECODE_MEMO.move_to_end(shm_name)
        return cached
    handle, view = shm_codec.attach(shm_name, n_items)
    try:
        requests = shm_codec.decode_requests(view)
    finally:
        shm_codec.detach(handle)
    _DECODE_MEMO[shm_name] = requests
    _DECODE_MEMO.move_to_end(shm_name)
    while len(_DECODE_MEMO) > _DECODE_MEMO_CAP:
        _DECODE_MEMO.popitem(last=False)
    return requests


def _phase2_job(args: tuple) -> Tuple[Tuple[str, str], RunResult]:
    """Pool worker: one coalescer arm against a shared raw stream.

    ``payload`` selects the transport rung: ``("shm", name, n_raw)``
    maps the parent's shared pages; ``("pickle", raw_array)`` carries
    the packed stream in the job args (the degraded per-job transport
    used when shared memory is unavailable or faulting).
    """
    (
        bench_key, kind_value, payload, label, n_accesses_done,
        trace_end_cycle, cache_metrics, config, protocol, device,
        fine_grain, engine, fault_ctx,
    ) = args
    from repro.artifacts import shm as shm_codec
    from repro.engine.system import System

    with job_scope(fault_ctx, "phase2.job"):
        if payload[0] == "shm":
            requests = _decode_shared(payload[1], payload[2])
        else:
            requests = shm_codec.decode_requests(payload[1])
        kind = CoalescerKind(kind_value)
        system = System(
            config=config,
            coalescer=kind,
            protocol=protocol,
            device=device,
            fine_grain=fine_grain,
            engine=System.arm_engine(kind, engine),
        )
        result = system.run_raw(
            requests,
            benchmark=label,
            n_accesses=n_accesses_done,
            trace_end_cycle=trace_end_cycle,
            cache_metrics=cache_metrics,
        )
    return (bench_key, kind_value), result


def _run_arms_serial(
    tp,
    bench_key: str,
    kind_values: Sequence[str],
    config: SimulationConfig,
    protocol,
    device: str,
    fine_grain: bool,
    engine: str = "auto",
) -> Dict[Tuple[str, str], RunResult]:
    """In-process phase 2: every arm shares one decoded request list."""
    from repro.engine.system import System

    requests = tp.requests()
    out: Dict[Tuple[str, str], RunResult] = {}
    for kind_value in kind_values:
        kind = CoalescerKind(kind_value)
        system = System(
            config=config,
            coalescer=kind,
            protocol=protocol,
            device=device,
            fine_grain=fine_grain,
            engine=System.arm_engine(kind, engine),
        )
        out[(bench_key, kind_value)] = system.run_raw(
            requests,
            benchmark=tp.benchmark,
            n_accesses=tp.n_accesses,
            trace_end_cycle=tp.trace_end_cycle,
            cache_metrics=tp.cache_metrics,
        )
    return out


def run_suite_parallel(
    kinds: Iterable[CoalescerKind] = (
        CoalescerKind.NONE, CoalescerKind.DMC, CoalescerKind.PAC
    ),
    benchmarks: Sequence[str] = BENCHMARK_NAMES,
    n_accesses: int = DEFAULT_ACCESSES,
    config: SimulationConfig = TABLE1,
    seed: Optional[int] = None,
    device: str = "hmc",
    max_workers: Optional[int] = None,
    telemetry: bool = False,
    spans=False,
    protocol=None,
    fine_grain: bool = False,
    scale=1.0,
    extra_benchmarks: Sequence[str] = (),
    use_artifact_cache: bool = True,
    stats: Optional[dict] = None,
    pipeline: str = "auto",
    faults=None,
    job_timeout: Optional[float] = None,
    max_retries: Optional[int] = None,
    backoff_base: Optional[float] = None,
    events=None,
    engine: str = "auto",
) -> Dict[Tuple[str, str], RunResult]:
    """Run every (benchmark, kind) pair concurrently, supervised.

    Returns ``{(benchmark, kind.value): RunResult}``. ``max_workers``
    defaults to the CPU count; pass 1 to force serial execution
    (useful under debuggers and in constrained CI).

    ``pipeline`` selects the execution strategy: ``"two-phase"`` (the
    artifact-cached prefix-sharing pipeline described in the module
    docstring), ``"per-job"`` (every job runs end-to-end — the pre-cache
    behaviour), or ``"auto"`` (two-phase unless probes are on).
    ``use_artifact_cache=False`` keeps the two-phase structure but skips
    all cache reads/writes. ``stats``, if given a dict, is populated
    with the phase timing split, artifact hit/miss counts, and a
    JSON-safe ``"health"`` snapshot.

    Self-healing: pooled jobs run under per-job wall-clock timeouts
    (``job_timeout``, default ``$REPRO_JOB_TIMEOUT`` or 300s), bounded
    retries with deterministic backoff (``max_retries``/``backoff_base``,
    env ``$REPRO_MAX_RETRIES``/``$REPRO_BACKOFF``), crashed-worker pool
    rebuilds, and the shm → per-job → serial degradation ladder. The
    :class:`~repro.engine.health.RunHealth` report lands on every
    result's ``.health`` (excluded from ``==``). ``faults`` accepts a
    :class:`~repro.faults.FaultPlan`, a spec string, ``None`` (consult
    ``$REPRO_FAULTS``), or ``False`` (force-disable injection).

    ``telemetry=True`` attaches a windowed-probe registry to each result
    (registries pickle back from workers bit-identically);
    ``spans=True`` (or an int sample rate) attaches a span trace the
    same way — each worker builds its own recorder, and sampling keys on
    the raw-stream ordinal, so span sets are bit-identical to serial
    runs. Probe runs must observe the cache pass, so they always take
    the per-job path.

    ``events`` installs a suite-wide structured event log
    (:mod:`repro.telemetry.events`): suite/phase boundaries, supervisor
    retries/timeouts/rebuilds, and transport demotions are emitted from
    the parent; forked pool workers inherit the sink (or auto-install
    from ``$REPRO_EVENTS``) and append their own lines, distinguished
    by ``pid``.

    ``engine`` forwards the coalescer execution-path knob of
    :func:`~repro.engine.driver.run_benchmark` into every worker: each
    PAC arm independently resolves ``"auto"`` inside its own process, so
    a faulted worker demotes itself to the reference path (bit-identical
    by the engine contract) while clean workers keep the batched kernel.
    The knob applies per arm (:meth:`System.arm_engine`):
    ``engine="batched"`` pins the PAC arms to the fast path while the
    non-PAC arms — which have only their reference implementation —
    resolve ``"auto"`` instead of rejecting the whole grid. Phase 1
    resolves the same knob for its per-benchmark trace+cache prefix:
    the default runs the batched front-end, ``engine="reference"``
    forces the scalar generators and hierarchy — bit-identical by the
    front-end contract, so artifact keys and cached passes are shared
    across engines. The back-end resolves per worker too: each phase-2
    job constructs its own ``System``, so its device twin (batched by
    default, reference under blockers) is chosen inside the worker
    process, never inherited from the parent.
    """
    if pipeline not in ("auto", "two-phase", "per-job"):
        raise ValueError(f"unknown pipeline {pipeline!r}")
    # Resolve the default seed HERE, not in the workers: every job must
    # carry the same concrete seed so per-benchmark seeds derive
    # identically regardless of worker count or config pickling.
    seed = config.seed if seed is None else seed
    extra_benchmarks = tuple(extra_benchmarks)
    kind_values = [kind.value for kind in kinds]
    n_jobs = len(benchmarks) * len(kind_values)
    workers = max_workers or min(n_jobs, os.cpu_count() or 2)
    probes_on = bool(telemetry) or bool(spans)
    two_phase = pipeline == "two-phase" or (
        pipeline == "auto" and not probes_on
    )
    if probes_on and two_phase:
        raise ValueError(
            "pipeline='two-phase' cannot observe the cache pass — "
            "telemetry/spans runs need pipeline='per-job' (or 'auto')"
        )

    plan = resolve_plan(faults)
    spec_text = plan.to_spec() if plan is not None else ""
    health = RunHealth(jobs=n_jobs, faults_enabled=plan is not None)
    # A *fresh* NullInjector (not the shared singleton) marks injection
    # as explicitly resolved for this run: active() only auto-installs
    # from $REPRO_FAULTS while the pristine singleton is in place, so a
    # run with faults disabled stays disabled even when the variable is
    # set — in this process and (via fork) in its pool workers.
    parent_injector = (
        FaultInjector(plan) if plan is not None else NullInjector()
    )

    if stats is not None:
        stats.update(
            pipeline="two-phase" if two_phase else "per-job",
            workers=workers,
            jobs=n_jobs,
            artifact_hits=0,
            artifact_misses=0,
            phase1_seconds=0.0,
            phase2_seconds=0.0,
        )

    supervisor = (
        PoolSupervisor(
            workers=workers,
            health=health,
            job_timeout=job_timeout,
            max_retries=max_retries,
            backoff_base=backoff_base,
        )
        if workers > 1 and n_jobs > 1
        else None
    )

    t_start = time.perf_counter()
    with ev.installed(ev.resolve_events(events)) as elog:
        if elog.enabled:
            elog.emit(ev.SuiteStarted(
                benchmarks=list(benchmarks),
                arms=list(kind_values),
                jobs=n_jobs,
                pipeline="two-phase" if two_phase else "per-job",
                workers=workers,
            ))
        try:
            with installed(parent_injector):
                if two_phase:
                    out = _run_two_phase(
                        kind_values, benchmarks, n_accesses, config, seed,
                        device, protocol, fine_grain, scale, extra_benchmarks,
                        use_artifact_cache, stats, supervisor, spec_text,
                        health, max_retries, backoff_base, engine,
                    )
                else:
                    out = _run_per_job(
                        kind_values, benchmarks, n_accesses, config, seed,
                        device, telemetry, spans, protocol, fine_grain, scale,
                        extra_benchmarks, stats, supervisor, spec_text,
                        health, max_retries, backoff_base, engine,
                    )
        finally:
            if supervisor is not None:
                supervisor.shutdown()
        health.completed = len(out)
        health.wall_seconds = time.perf_counter() - t_start
        if elog.enabled:
            elog.emit(ev.SuiteCompleted(
                jobs=n_jobs,
                completed=health.completed,
                healthy=health.healthy,
            ))
    if stats is not None:
        stats["phase1_seconds"] = health.phase1_seconds
        stats["phase2_seconds"] = health.phase2_seconds
        stats["health"] = health.as_dict()
    for result in out.values():
        result.health = health
    return out


def _run_two_phase(
    kind_values: Sequence[str],
    benchmarks: Sequence[str],
    n_accesses: int,
    config: SimulationConfig,
    seed: int,
    device: str,
    protocol,
    fine_grain: bool,
    scale,
    extra_benchmarks: Tuple[str, ...],
    use_artifact_cache: bool,
    stats: Optional[dict],
    supervisor: Optional[PoolSupervisor],
    spec_text: str,
    health: RunHealth,
    max_retries: Optional[int],
    backoff_base: Optional[float],
    engine: str = "auto",
) -> Dict[Tuple[str, str], RunResult]:
    from repro.artifacts import (
        cache_enabled,
        shm as shm_codec,
        try_load_trace_pass,
        load_or_compute_trace_pass,
    )
    from repro.engine.system import System

    use_cache = use_artifact_cache and cache_enabled()
    elog = ev.active()

    def _compute_pass_in_parent(bench: str):
        return load_or_compute_trace_pass(
            bench, n_accesses, config=config, seed=seed, device=device,
            scale=scale, extra_benchmarks=extra_benchmarks,
            fine_grain=fine_grain, use_cache=use_cache, engine=engine,
        )

    # ---- phase 1: one trace+cache pass per benchmark ------------------
    t0 = time.perf_counter()
    if elog.enabled:
        elog.emit(ev.PhaseStarted(phase="phase1", jobs=len(benchmarks)))
    passes: Dict[str, object] = {}
    pending: List[str] = []
    for bench in benchmarks:
        tp = try_load_trace_pass(
            bench, n_accesses, config=config, seed=seed, device=device,
            scale=scale, extra_benchmarks=extra_benchmarks,
            fine_grain=fine_grain,
        ) if use_cache else None
        if tp is not None:
            passes[bench] = tp
        else:
            pending.append(bench)
    if stats is not None:
        stats["artifact_hits"] = len(passes)
        stats["artifact_misses"] = len(pending)

    if pending:
        if supervisor is not None and len(pending) > 1:
            ordered = sorted(
                pending,
                key=lambda b: _bench_weights().get(b, 2.0),
                reverse=True,
            )

            def _p1_build(bench: str, ordinal: int):
                def build(attempt: int) -> tuple:
                    ctx = (
                        (spec_text, ordinal, attempt) if spec_text else None
                    )
                    return (
                        bench, n_accesses, config, seed, device, scale,
                        extra_benchmarks, fine_grain, use_cache, engine, ctx,
                    )
                return build

            def _p1_fallback(job: SupervisedJob):
                return job.key, _compute_pass_in_parent(job.key)

            p1_jobs = [
                SupervisedJob(
                    key=bench,
                    label=f"phase1:{bench}",
                    build_args=_p1_build(bench, i),
                )
                for i, bench in enumerate(ordered)
            ]
            for bench, tp in supervisor.run(
                _phase1_job, p1_jobs,
                fallback=_p1_fallback, fallback_label="phase1-serial",
            ).values():
                passes[bench] = tp
        else:
            for bench in pending:
                passes[bench] = _compute_pass_in_parent(bench)
    t1 = time.perf_counter()
    health.phase1_seconds = t1 - t0
    if elog.enabled:
        elog.emit(ev.PhaseCompleted(phase="phase1", completed=len(passes)))

    # ---- phase 2: (benchmark × arm) coalescer+device jobs -------------
    n_arm_jobs = len(benchmarks) * len(kind_values)
    if elog.enabled:
        elog.emit(ev.PhaseStarted(phase="phase2", jobs=n_arm_jobs))
    out: Dict[Tuple[str, str], RunResult] = {}
    shm_handles: List[object] = []
    try:
        if supervisor is None:
            for bench in benchmarks:
                out.update(
                    _run_arms_serial(
                        passes[bench], bench, kind_values, config,
                        protocol, device, fine_grain, engine,
                    )
                )
        else:
            # Transport rung per benchmark: shared memory when the
            # publish succeeds, pickled per-job args otherwise. A
            # benchmark is demoted when its segment faults mid-flight.
            transport: Dict[str, Tuple] = {}
            for bench in benchmarks:
                try:
                    handle, name = shm_codec.publish(passes[bench].raw)
                except OSError as exc:
                    health.record_failure(f"publish:{bench}", exc)
                    health.degradations.append(f"shm->per-job:{bench}")
                    if elog.enabled:
                        elog.emit(ev.Demoted(
                            rung="shm->per-job", label=bench,
                        ))
                    transport[bench] = ("pickle",)
                else:
                    shm_handles.append(handle)
                    transport[bench] = ("shm", name)

            def _p2_build(bench: str, kind_value: str, ordinal: int):
                def build(attempt: int) -> tuple:
                    tp = passes[bench]
                    rung = transport[bench]
                    payload = (
                        ("shm", rung[1], tp.n_raw)
                        if rung[0] == "shm"
                        else ("pickle", tp.raw)
                    )
                    ctx = (
                        (spec_text, ordinal, attempt) if spec_text else None
                    )
                    return (
                        bench, kind_value, payload, tp.benchmark,
                        tp.n_accesses, tp.trace_end_cycle,
                        tp.cache_metrics, config, protocol, device,
                        fine_grain, engine, ctx,
                    )
                return build

            def _p2_on_failure(job: SupervisedJob, exc: BaseException):
                bench = job.key[0]
                if (
                    isinstance(exc, FileNotFoundError)
                    and transport.get(bench, ("",))[0] == "shm"
                ):
                    # The segment is gone (or faulting) for this
                    # benchmark: demote every remaining attempt of its
                    # jobs to the pickled per-job transport.
                    transport[bench] = ("pickle",)
                    health.degradations.append(f"shm->per-job:{bench}")
                    if elog.enabled:
                        elog.emit(ev.Demoted(
                            rung="shm->per-job", label=bench,
                        ))

            def _p2_fallback(job: SupervisedJob):
                # Last rung: run this single arm in the parent, from
                # the same trace pass — bit-identical by construction.
                bench, kind_value = job.key
                tp = passes[bench]
                kind = CoalescerKind(kind_value)
                system = System(
                    config=config,
                    coalescer=kind,
                    protocol=protocol,
                    device=device,
                    fine_grain=fine_grain,
                    engine=System.arm_engine(kind, engine),
                )
                result = system.run_raw(
                    tp.requests(),
                    benchmark=tp.benchmark,
                    n_accesses=tp.n_accesses,
                    trace_end_cycle=tp.trace_end_cycle,
                    cache_metrics=tp.cache_metrics,
                )
                return job.key, result

            grid = [
                (bench, kind_value)
                for bench in benchmarks
                for kind_value in kind_values
            ]
            # Longest-expected-first keeps the pool's tail short — a big
            # job started last would otherwise run alone while every
            # other worker idles. One job per cell (no chunking) so the
            # scheduler can't batch a heavy job behind light ones.
            grid.sort(key=lambda j: _job_cost(j[0], j[1]), reverse=True)
            p2_jobs = [
                SupervisedJob(
                    key=cell,
                    label=f"{cell[0]}/{cell[1]}",
                    build_args=_p2_build(cell[0], cell[1], i),
                )
                for i, cell in enumerate(grid)
            ]
            for key, result in supervisor.run(
                _phase2_job, p2_jobs,
                fallback=_p2_fallback, fallback_label="serial",
                on_failure=_p2_on_failure,
            ).values():
                out[key] = result
    finally:
        for handle in shm_handles:
            if not shm_codec.release(handle):
                # Verified leak: record it (the conftest leak fixture
                # and `repro health` both surface this).
                health.shm_leaks.append(getattr(handle, "name", "?"))
    health.phase2_seconds = time.perf_counter() - t1
    if elog.enabled:
        elog.emit(ev.PhaseCompleted(phase="phase2", completed=len(out)))
    return out


def _run_per_job(
    kind_values: Sequence[str],
    benchmarks: Sequence[str],
    n_accesses: int,
    config: SimulationConfig,
    seed: int,
    device: str,
    telemetry,
    spans,
    protocol,
    fine_grain: bool,
    scale,
    extra_benchmarks: Tuple[str, ...],
    stats: Optional[dict],
    supervisor: Optional[PoolSupervisor],
    spec_text: str,
    health: RunHealth,
    max_retries: Optional[int],
    backoff_base: Optional[float],
    engine: str = "auto",
) -> Dict[Tuple[str, str], RunResult]:
    """The pre-artifact-cache behaviour: every job runs end-to-end."""
    t0 = time.perf_counter()
    elog = ev.active()
    grid = [
        (bench, kind_value)
        for bench in benchmarks
        for kind_value in kind_values
    ]
    grid.sort(key=lambda j: _job_cost(j[0], j[1]), reverse=True)
    if elog.enabled:
        elog.emit(ev.PhaseStarted(phase="per-job", jobs=len(grid)))

    def _build(bench: str, kind_value: str, ordinal: int):
        def build(attempt: int) -> tuple:
            ctx = (spec_text, ordinal, attempt) if spec_text else None
            return (
                bench, kind_value, n_accesses, config, seed, device,
                telemetry, spans, protocol, fine_grain, scale,
                extra_benchmarks, engine, ctx,
            )
        return build

    jobs = [
        SupervisedJob(
            key=cell,
            label=f"{cell[0]}/{cell[1]}",
            build_args=_build(cell[0], cell[1], i),
        )
        for i, cell in enumerate(grid)
    ]
    if supervisor is None:
        results = run_serial_with_retries(
            _run_one, jobs, health,
            max_retries=max_retries, backoff_base=backoff_base,
        )
    else:

        def _fallback(job: SupervisedJob):
            # Re-run end-to-end in the parent, with the fault context
            # stripped: the fallback rung is the recovery path.
            args = job.build_args(job.attempt)
            return _run_one(args[:-1] + (None,))

        results = supervisor.run(
            _run_one, jobs, fallback=_fallback, fallback_label="serial",
        )
    out = {key: result for key, result in results.values()}
    health.phase2_seconds = time.perf_counter() - t0
    if elog.enabled:
        elog.emit(ev.PhaseCompleted(phase="per-job", completed=len(out)))
    return out
