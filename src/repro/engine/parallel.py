"""Parallel suite execution: two-phase pipeline over a process pool.

A full evaluation is ~50 (benchmark, arm) simulations, but only the
coalescer+device half differs between arms — the trace and the
cache-hierarchy pass are deterministic in (seed, config) and identical
across arms. :func:`run_suite_parallel` therefore runs in two phases:

* **Phase 1** computes each benchmark's trace + cache pass exactly once
  (per benchmark, not per arm), consulting the content-addressed
  artifact cache (:mod:`repro.artifacts`) so repeated suites skip the
  prefix entirely.
* **Phase 2** fans the (benchmark × arm) coalescer+device jobs over a
  persistent process pool. Each benchmark's raw request stream is
  packed once into an array-of-structs buffer and published through
  ``multiprocessing.shared_memory`` — workers map the parent's pages
  instead of unpickling tens of thousands of request objects per job.

Every run still derives its RNG from ``(seed, benchmark)``, and probes
(telemetry/spans) force the legacy one-job-per-arm end-to-end path, so
results are bit-identical across serial / pooled / cached execution.
"""

from __future__ import annotations

import json
import os
import time
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor, as_completed
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.config import SimulationConfig, TABLE1
from repro.engine.driver import DEFAULT_ACCESSES, run_benchmark
from repro.engine.results import RunResult
from repro.engine.system import CoalescerKind
from repro.workloads import BENCHMARK_NAMES


#: Fallback relative wall-clock weight of each (benchmark, arm) job,
#: used when no bench baseline is available. Scheduling only (longest
#: expected first) — results are keyed and bit-identical regardless of
#: order.
_BENCH_COST = {
    "gs": 12.0, "bfs": 4.0, "pagerank": 4.0, "ssca2": 3.0,
    "nas-cg": 2.0, "stream": 1.5, "hpcg": 1.0,
}
_ARM_COST = {"pac": 3.0, "sortdmc": 2.0, "dmc": 1.5, "none": 1.0}

#: Env override for the bench baseline the scheduler weights come from.
ENV_BENCH_BASELINE = "REPRO_BENCH_BASELINE"

_bench_weights_cache: Optional[Dict[str, float]] = None


def _bench_weights() -> Dict[str, float]:
    """Per-benchmark scheduling weights from the measured bench baseline.

    ``BENCH_baseline.json`` (env override, cwd, then repo root) records
    measured end-to-end seconds per benchmark; those replace the
    hand-maintained :data:`_BENCH_COST` guesses. Unknown benchmarks and
    missing/unparsable baselines fall back to the constants.
    """
    global _bench_weights_cache
    if _bench_weights_cache is not None:
        return _bench_weights_cache
    weights = dict(_BENCH_COST)
    candidates: List[Path] = []
    env = os.environ.get(ENV_BENCH_BASELINE)
    if env:
        candidates.append(Path(env))
    candidates.append(Path.cwd() / "BENCH_baseline.json")
    candidates.append(Path(__file__).resolve().parents[3] / "BENCH_baseline.json")
    for path in candidates:
        try:
            report = json.loads(path.read_text())
            measured = {
                name: float(entry["seconds"])
                for name, entry in report.get("end_to_end", {}).items()
                if float(entry.get("seconds", 0.0)) > 0.0
            }
        except (OSError, ValueError, KeyError, TypeError):
            continue
        if measured:
            # Normalize so the lightest measured benchmark sits at 1.0,
            # keeping measured and fallback weights on the same scale.
            floor = min(measured.values())
            weights.update(
                {name: secs / floor for name, secs in measured.items()}
            )
            break
    _bench_weights_cache = weights
    return weights


def _job_cost(benchmark: str, kind_value: str) -> float:
    # Multi-benchmark labels ("gs+bfs") cost roughly the sum of parts.
    weights = _bench_weights()
    bench_w = sum(weights.get(part, 2.0) for part in benchmark.split("+"))
    return bench_w * _ARM_COST.get(kind_value, 2.0)


# --------------------------------------------------------------------- #
# legacy per-job path (probe runs, and explicit pipeline="per-job")


def _run_one(args: tuple) -> Tuple[Tuple[str, str], RunResult]:
    (
        benchmark, kind_value, n_accesses, config, seed, device, telemetry,
        spans, protocol, fine_grain, scale, extra_benchmarks,
    ) = args
    result = run_benchmark(
        benchmark,
        coalescer=CoalescerKind(kind_value),
        n_accesses=n_accesses,
        config=config,
        seed=seed,
        device=device,
        telemetry=telemetry,
        spans=spans,
        protocol=protocol,
        fine_grain=fine_grain,
        scale=scale,
        extra_benchmarks=extra_benchmarks,
    )
    return (benchmark, kind_value), result


# --------------------------------------------------------------------- #
# two-phase path


def _phase1_job(args: tuple):
    """Pool worker: compute (or load) one benchmark's trace pass.

    Artifact writes happen in the worker; the packed stream returns to
    the parent as a single contiguous buffer.
    """
    (
        benchmark, n_accesses, config, seed, device, scale,
        extra_benchmarks, fine_grain, use_cache,
    ) = args
    from repro.artifacts import load_or_compute_trace_pass

    tp = load_or_compute_trace_pass(
        benchmark, n_accesses, config=config, seed=seed, device=device,
        scale=scale, extra_benchmarks=extra_benchmarks,
        fine_grain=fine_grain, use_cache=use_cache,
    )
    return benchmark, tp


#: Worker-side decoded-stream memo, keyed by shared-memory segment name.
#: A pool worker runs several arms of the same benchmark back to back;
#: decoding the stream once per segment (not once per job) makes the
#: extra arms nearly free. Bounded: a suite fans out over only a handful
#: of distinct segments at a time.
_DECODE_MEMO: "OrderedDict[str, list]" = OrderedDict()
_DECODE_MEMO_CAP = 4


def _decode_shared(shm_name: str, n_items: int) -> list:
    from repro.artifacts import shm as shm_codec

    cached = _DECODE_MEMO.get(shm_name)
    if cached is not None:
        _DECODE_MEMO.move_to_end(shm_name)
        return cached
    handle, view = shm_codec.attach(shm_name, n_items)
    try:
        requests = shm_codec.decode_requests(view)
    finally:
        shm_codec.detach(handle)
    _DECODE_MEMO[shm_name] = requests
    _DECODE_MEMO.move_to_end(shm_name)
    while len(_DECODE_MEMO) > _DECODE_MEMO_CAP:
        _DECODE_MEMO.popitem(last=False)
    return requests


def _phase2_job(args: tuple) -> Tuple[Tuple[str, str], RunResult]:
    """Pool worker: one coalescer arm against a shared raw stream."""
    (
        bench_key, kind_value, shm_name, n_raw, label, n_accesses_done,
        trace_end_cycle, cache_metrics, config, protocol, device,
        fine_grain,
    ) = args
    from repro.engine.system import System

    requests = _decode_shared(shm_name, n_raw)
    system = System(
        config=config,
        coalescer=CoalescerKind(kind_value),
        protocol=protocol,
        device=device,
        fine_grain=fine_grain,
    )
    result = system.run_raw(
        requests,
        benchmark=label,
        n_accesses=n_accesses_done,
        trace_end_cycle=trace_end_cycle,
        cache_metrics=cache_metrics,
    )
    return (bench_key, kind_value), result


def _run_arms_serial(
    tp,
    bench_key: str,
    kind_values: Sequence[str],
    config: SimulationConfig,
    protocol,
    device: str,
    fine_grain: bool,
) -> Dict[Tuple[str, str], RunResult]:
    """In-process phase 2: every arm shares one decoded request list."""
    from repro.engine.system import System

    requests = tp.requests()
    out: Dict[Tuple[str, str], RunResult] = {}
    for kind_value in kind_values:
        system = System(
            config=config,
            coalescer=CoalescerKind(kind_value),
            protocol=protocol,
            device=device,
            fine_grain=fine_grain,
        )
        out[(bench_key, kind_value)] = system.run_raw(
            requests,
            benchmark=tp.benchmark,
            n_accesses=tp.n_accesses,
            trace_end_cycle=tp.trace_end_cycle,
            cache_metrics=tp.cache_metrics,
        )
    return out


def run_suite_parallel(
    kinds: Iterable[CoalescerKind] = (
        CoalescerKind.NONE, CoalescerKind.DMC, CoalescerKind.PAC
    ),
    benchmarks: Sequence[str] = BENCHMARK_NAMES,
    n_accesses: int = DEFAULT_ACCESSES,
    config: SimulationConfig = TABLE1,
    seed: Optional[int] = None,
    device: str = "hmc",
    max_workers: Optional[int] = None,
    telemetry: bool = False,
    spans=False,
    protocol=None,
    fine_grain: bool = False,
    scale=1.0,
    extra_benchmarks: Sequence[str] = (),
    use_artifact_cache: bool = True,
    stats: Optional[dict] = None,
    pipeline: str = "auto",
) -> Dict[Tuple[str, str], RunResult]:
    """Run every (benchmark, kind) pair concurrently.

    Returns ``{(benchmark, kind.value): RunResult}``. ``max_workers``
    defaults to the CPU count; pass 1 to force serial execution
    (useful under debuggers and in constrained CI).

    ``pipeline`` selects the execution strategy: ``"two-phase"`` (the
    artifact-cached prefix-sharing pipeline described in the module
    docstring), ``"per-job"`` (every job runs end-to-end — the pre-cache
    behaviour), or ``"auto"`` (two-phase unless probes are on).
    ``use_artifact_cache=False`` keeps the two-phase structure but skips
    all cache reads/writes. ``stats``, if given a dict, is populated
    with the phase timing split and artifact hit/miss counts.

    ``telemetry=True`` attaches a windowed-probe registry to each result
    (registries pickle back from workers bit-identically);
    ``spans=True`` (or an int sample rate) attaches a span trace the
    same way — each worker builds its own recorder, and sampling keys on
    the raw-stream ordinal, so span sets are bit-identical to serial
    runs. Probe runs must observe the cache pass, so they always take
    the per-job path.
    """
    if pipeline not in ("auto", "two-phase", "per-job"):
        raise ValueError(f"unknown pipeline {pipeline!r}")
    # Resolve the default seed HERE, not in the workers: every job must
    # carry the same concrete seed so per-benchmark seeds derive
    # identically regardless of worker count or config pickling.
    seed = config.seed if seed is None else seed
    extra_benchmarks = tuple(extra_benchmarks)
    kind_values = [kind.value for kind in kinds]
    n_jobs = len(benchmarks) * len(kind_values)
    workers = max_workers or min(n_jobs, os.cpu_count() or 2)
    probes_on = bool(telemetry) or bool(spans)
    two_phase = pipeline == "two-phase" or (
        pipeline == "auto" and not probes_on
    )
    if probes_on and two_phase:
        raise ValueError(
            "pipeline='two-phase' cannot observe the cache pass — "
            "telemetry/spans runs need pipeline='per-job' (or 'auto')"
        )
    if stats is not None:
        stats.update(
            pipeline="two-phase" if two_phase else "per-job",
            workers=workers,
            jobs=n_jobs,
            artifact_hits=0,
            artifact_misses=0,
            phase1_seconds=0.0,
            phase2_seconds=0.0,
        )

    if not two_phase:
        return _run_per_job(
            kind_values, benchmarks, n_accesses, config, seed, device,
            workers, telemetry, spans, protocol, fine_grain, scale,
            extra_benchmarks, stats,
        )

    from repro.artifacts import (
        cache_enabled,
        shm as shm_codec,
        try_load_trace_pass,
        load_or_compute_trace_pass,
    )

    use_cache = use_artifact_cache and cache_enabled()

    # ---- phase 1: one trace+cache pass per benchmark ------------------
    t0 = time.perf_counter()
    passes: Dict[str, object] = {}
    pending: List[str] = []
    for bench in benchmarks:
        tp = try_load_trace_pass(
            bench, n_accesses, config=config, seed=seed, device=device,
            scale=scale, extra_benchmarks=extra_benchmarks,
            fine_grain=fine_grain,
        ) if use_cache else None
        if tp is not None:
            passes[bench] = tp
        else:
            pending.append(bench)
    if stats is not None:
        stats["artifact_hits"] = len(passes)
        stats["artifact_misses"] = len(pending)

    pool = ProcessPoolExecutor(max_workers=workers) if workers > 1 else None
    shm_handles: List[object] = []
    out: Dict[Tuple[str, str], RunResult] = {}
    try:
        if pending:
            if pool is not None and len(pending) > 1:
                p1_jobs = [
                    (
                        bench, n_accesses, config, seed, device, scale,
                        extra_benchmarks, fine_grain, use_cache,
                    )
                    for bench in pending
                ]
                p1_jobs.sort(
                    key=lambda j: _bench_weights().get(j[0], 2.0),
                    reverse=True,
                )
                for bench, tp in pool.map(_phase1_job, p1_jobs):
                    passes[bench] = tp
            else:
                for bench in pending:
                    passes[bench] = load_or_compute_trace_pass(
                        bench, n_accesses, config=config, seed=seed,
                        device=device, scale=scale,
                        extra_benchmarks=extra_benchmarks,
                        fine_grain=fine_grain, use_cache=use_cache,
                    )
        t1 = time.perf_counter()

        # ---- phase 2: (benchmark × arm) coalescer+device jobs ---------
        if pool is None:
            for bench in benchmarks:
                out.update(
                    _run_arms_serial(
                        passes[bench], bench, kind_values, config,
                        protocol, device, fine_grain,
                    )
                )
        else:
            shm_names: Dict[str, str] = {}
            for bench in benchmarks:
                handle, name = shm_codec.publish(passes[bench].raw)
                shm_handles.append(handle)
                shm_names[bench] = name
            jobs = [
                (
                    bench, kind_value, shm_names[bench],
                    passes[bench].n_raw, passes[bench].benchmark,
                    passes[bench].n_accesses,
                    passes[bench].trace_end_cycle,
                    passes[bench].cache_metrics, config, protocol,
                    device, fine_grain,
                )
                for bench in benchmarks
                for kind_value in kind_values
            ]
            # Longest-expected-first keeps the pool's tail short — a big
            # job started last would otherwise run alone while every
            # other worker idles. One future per job (no chunking) so
            # the scheduler can't batch a heavy job behind light ones.
            jobs.sort(key=lambda j: _job_cost(j[0], j[1]), reverse=True)
            futures = [pool.submit(_phase2_job, job) for job in jobs]
            for future in as_completed(futures):
                key, result = future.result()
                out[key] = result
        t2 = time.perf_counter()
        if stats is not None:
            stats["phase1_seconds"] = t1 - t0
            stats["phase2_seconds"] = t2 - t1
    finally:
        for handle in shm_handles:
            shm_codec.release(handle)
        if pool is not None:
            pool.shutdown()
    return out


def _run_per_job(
    kind_values: Sequence[str],
    benchmarks: Sequence[str],
    n_accesses: int,
    config: SimulationConfig,
    seed: int,
    device: str,
    workers: int,
    telemetry,
    spans,
    protocol,
    fine_grain: bool,
    scale,
    extra_benchmarks: Tuple[str, ...],
    stats: Optional[dict],
) -> Dict[Tuple[str, str], RunResult]:
    """The pre-artifact-cache behaviour: every job runs end-to-end."""
    t0 = time.perf_counter()
    jobs = [
        (
            bench, kind_value, n_accesses, config, seed, device, telemetry,
            spans, protocol, fine_grain, scale, extra_benchmarks,
        )
        for bench in benchmarks
        for kind_value in kind_values
    ]
    if workers <= 1 or len(jobs) == 1:
        out = dict(_run_one(job) for job in jobs)
    else:
        jobs.sort(key=lambda j: _job_cost(j[0], j[1]), reverse=True)
        out = {}
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(_run_one, job) for job in jobs]
            for future in as_completed(futures):
                key, result = future.result()
                out[key] = result
    if stats is not None:
        stats["phase2_seconds"] = time.perf_counter() - t0
    return out
