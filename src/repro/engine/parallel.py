"""Parallel suite execution.

A full evaluation is ~50 independent (benchmark, arm) simulations;
:func:`run_suite_parallel` fans them out over a process pool. Results
are plain picklable dataclasses, and every run re-derives its RNG from
``(seed, benchmark)``, so parallel results are bit-identical to serial
ones.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Dict, Iterable, Optional, Sequence, Tuple

from repro.config import SimulationConfig, TABLE1
from repro.engine.driver import DEFAULT_ACCESSES, run_benchmark
from repro.engine.results import RunResult
from repro.engine.system import CoalescerKind
from repro.workloads import BENCHMARK_NAMES


#: Relative wall-clock weight of each (benchmark, arm) job, measured on
#: the repro bench baseline. Used only for scheduling (longest expected
#: first) — results are keyed and bit-identical regardless of order.
_BENCH_COST = {
    "gs": 12.0, "bfs": 4.0, "pagerank": 4.0, "ssca2": 3.0,
    "nas-cg": 2.0, "stream": 1.5, "hpcg": 1.0,
}
_ARM_COST = {"pac": 3.0, "sortdmc": 2.0, "dmc": 1.5, "none": 1.0}


def _job_cost(benchmark: str, kind_value: str) -> float:
    return _BENCH_COST.get(benchmark, 2.0) * _ARM_COST.get(kind_value, 2.0)


def _run_one(args: tuple) -> Tuple[Tuple[str, str], RunResult]:
    (
        benchmark, kind_value, n_accesses, config, seed, device, telemetry,
        spans,
    ) = args
    result = run_benchmark(
        benchmark,
        coalescer=CoalescerKind(kind_value),
        n_accesses=n_accesses,
        config=config,
        seed=seed,
        device=device,
        telemetry=telemetry,
        spans=spans,
    )
    return (benchmark, kind_value), result


def run_suite_parallel(
    kinds: Iterable[CoalescerKind] = (
        CoalescerKind.NONE, CoalescerKind.DMC, CoalescerKind.PAC
    ),
    benchmarks: Sequence[str] = BENCHMARK_NAMES,
    n_accesses: int = DEFAULT_ACCESSES,
    config: SimulationConfig = TABLE1,
    seed: Optional[int] = None,
    device: str = "hmc",
    max_workers: Optional[int] = None,
    telemetry: bool = False,
    spans=False,
) -> Dict[Tuple[str, str], RunResult]:
    """Run every (benchmark, kind) pair concurrently.

    Returns ``{(benchmark, kind.value): RunResult}``. ``max_workers``
    defaults to the CPU count; pass 1 to force serial execution
    (useful under debuggers and in constrained CI).
    ``telemetry=True`` attaches a windowed-probe registry to each result
    (registries pickle back from workers bit-identically);
    ``spans=True`` (or an int sample rate) attaches a span trace the
    same way — each worker builds its own recorder, and sampling keys on
    the raw-stream ordinal, so span sets are bit-identical to serial
    runs.
    """
    # Resolve the default seed HERE, not in the workers: every job must
    # carry the same concrete seed so per-benchmark seeds derive
    # identically regardless of worker count or config pickling.
    seed = config.seed if seed is None else seed
    jobs = [
        (
            bench, kind.value, n_accesses, config, seed, device, telemetry,
            spans,
        )
        for bench in benchmarks
        for kind in kinds
    ]
    if max_workers == 1:
        return dict(_run_one(job) for job in jobs)
    # Longest-expected-first: submitting the heavy jobs (gs/pac and
    # friends) up front keeps the pool's tail short — a big job started
    # last would otherwise run alone while every other worker idles.
    # One future per job (no chunking) so the scheduler can't batch a
    # heavy job behind light ones on the same worker.
    jobs.sort(key=lambda j: _job_cost(j[0], j[1]), reverse=True)
    workers = max_workers or min(len(jobs), os.cpu_count() or 2)
    out: Dict[Tuple[str, str], RunResult] = {}
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = [pool.submit(_run_one, job) for job in jobs]
        for future in as_completed(futures):
            key, result = future.result()
            out[key] = result
    return out
