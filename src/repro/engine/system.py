"""System wiring: workload -> page table -> caches -> coalescer -> HMC.

:class:`System` assembles one simulated machine per the paper's Figure 3
and runs a workload through it. The coalescer slot takes one of four
configurations — the paper's three evaluation arms plus the prior-art
sorting-network design:

* ``CoalescerKind.NONE`` — standard HMC controller, no aggregation;
* ``CoalescerKind.DMC``  — conventional MSHR-based coalescing;
* ``CoalescerKind.PAC``  — the paged adaptive coalescer;
* ``CoalescerKind.SORT`` — the request-sorting coalescer of Wang et
  al. [32] (the Figure 11a comparison, run live).

Devices: ``"hmc"`` (default), ``"hbm"``, and the conventional ``"ddr"``
foil.
"""

from __future__ import annotations

import enum
from typing import List, Optional, Sequence, Tuple

from repro.cache.hierarchy import CacheHierarchy, RawStream
from repro.common.rng import derive_seed
from repro.config import SimulationConfig, TABLE1
from repro.core.pac import PagedAdaptiveCoalescer
from repro.core.pac_batched import BatchedPagedAdaptiveCoalescer
from repro.core.protocols import HMC2, HMC2_FINE, MemoryProtocol
from repro.engine.results import RunResult, build_result
from repro.hmc.device import HMCDevice
from repro.hmc.hbm import HBMDevice, hbm_config
from repro.mem.pagetable import FrameAllocator, PageTable
from repro.mem.trace import AccessTrace
from repro.mshr.dmc import Coalescer, MSHRBasedDMC, NullCoalescer
from repro.telemetry import (
    NULL_SPANS,
    NULL_TELEMETRY,
    SpanRecorder,
    TelemetryRegistry,
)
from repro.workloads import get_workload


class CoalescerKind(enum.Enum):
    """The paper's three evaluation arms plus the prior-art sorting
    network coalescer (Wang et al. [32]) PAC is contrasted with."""

    NONE = "none"
    DMC = "dmc"
    PAC = "pac"
    SORT = "sortdmc"


#: Valid values of the ``engine=`` knob.
ENGINES = ("auto", "reference", "batched")


class System:
    """One simulated node: cores + caches + coalescer + 3D-stacked memory."""

    def __init__(
        self,
        config: SimulationConfig = TABLE1,
        coalescer: CoalescerKind = CoalescerKind.PAC,
        protocol: Optional[MemoryProtocol] = None,
        device: str = "hmc",
        fine_grain: bool = False,
        telemetry=False,
        spans=False,
        engine: str = "auto",
    ) -> None:
        self.config = config
        self.kind = coalescer
        self.fine_grain = fine_grain
        if engine not in ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; expected one of {ENGINES}"
            )
        self.engine_requested = engine
        # ``telemetry`` is False (off), True (fresh registry at the
        # default window), or a caller-supplied TelemetryRegistry (e.g.
        # with a custom window_cycles).
        if telemetry is True:
            self.telemetry = TelemetryRegistry()
        elif telemetry is False or telemetry is None:
            self.telemetry = None
        else:
            self.telemetry = telemetry
        probes = self.telemetry if self.telemetry is not None else NULL_TELEMETRY
        # ``spans`` is False (off), True (default 1-in-16 sampling), an
        # int sample rate, or a caller-supplied SpanRecorder.
        if spans is True:
            self.spans = SpanRecorder(seed=config.seed)
        elif spans is False or spans is None:
            self.spans = None
        elif isinstance(spans, int):
            self.spans = SpanRecorder(sample_rate=spans, seed=config.seed)
        else:
            self.spans = spans
        span_rec = self.spans if self.spans is not None else NULL_SPANS
        # Engines resolve before the device is constructed — the device
        # build below dispatches on ``backend_engine`` — in demotion-rung
        # order: coalescer first (the historical event), then front-end,
        # then back-end. The resolvers read only the arm and the
        # telemetry/span/fault blockers, never the probe scopes, so
        # probe registration order (device, cache, coalescer) is
        # unchanged from the historical wiring.
        self.engine = self._resolve_engine(engine)
        self.frontend_engine = self._resolve_frontend_engine(engine)
        self.backend_engine = self._resolve_backend_engine(engine)
        batched_device = self.backend_engine == "batched"
        if device == "hmc":
            if batched_device:
                from repro.hmc.batched import BatchedHMCDevice as _hmc_cls
            else:
                _hmc_cls = HMCDevice
            self.device = _hmc_cls(
                config.hmc, probes=probes.scope("device"), spans=span_rec
            )
            default_protocol = HMC2_FINE if fine_grain else HMC2
        elif device == "hbm":
            if batched_device:
                from repro.hmc.batched import BatchedHBMDevice as _hbm_cls
            else:
                _hbm_cls = HBMDevice
            self.device = _hbm_cls(
                hbm_config(), probes=probes.scope("device"), spans=span_rec
            )
            from repro.core.protocols import HBM as HBM_PROTO

            default_protocol = HBM_PROTO
        elif device == "ddr":
            # Conventional DDR4 foil (Section 2): open-page, fixed 64B
            # bursts. Coalesced packets transfer as consecutive bursts.
            if batched_device:
                from repro.ddr.batched import BatchedDDRDevice as _ddr_cls
            else:
                from repro.ddr.device import DDRDevice as _ddr_cls

            self.device = _ddr_cls(
                probes=probes.scope("device"), spans=span_rec
            )
            default_protocol = HMC2_FINE if fine_grain else HMC2
        else:
            raise ValueError(f"unknown device {device!r}")
        self.protocol = protocol if protocol is not None else default_protocol
        device_max = getattr(
            self.device, "config", None
        )
        if device_max is not None and hasattr(device_max, "max_packet_bytes"):
            if self.protocol.max_packet_bytes > device_max.max_packet_bytes:
                raise ValueError(
                    f"protocol {self.protocol.name!r} emits packets up to "
                    f"{self.protocol.max_packet_bytes}B but the device "
                    f"accepts at most {device_max.max_packet_bytes}B — "
                    "pass a matching protocol/device pair"
                )
        # The hierarchy is built lazily: phase-2 pipeline jobs
        # (:meth:`run_raw`) consume a pre-computed raw stream and never
        # touch the caches, so they skip constructing per-core L1s + LLC
        # entirely. Probe runs build it eagerly to keep the probe
        # registration order (cache before coalescer) identical to the
        # historical wiring; the eager build dispatches on the
        # ``frontend_engine`` resolved above.
        self._probes = probes
        self._span_rec = span_rec
        self._hierarchy: Optional[CacheHierarchy] = None
        if self.telemetry is not None or self.spans is not None:
            _ = self.hierarchy
        self.coalescer = self._build_coalescer(probes, span_rec)

    @staticmethod
    def arm_engine(kind: "CoalescerKind", engine: str) -> str:
        """Per-arm engine for a multi-arm grid.

        ``engine="batched"`` names the PAC fast path; the other arms
        have only their reference implementation, so a grid-level
        request resolves to ``auto`` on non-PAC arms (where ``auto``
        is always ``reference``, eventlessly) instead of rejecting the
        whole grid. Single-arm entry points stay strict: naming the
        arm *and* ``batched`` is a contradiction worth a ``ValueError``.
        """
        if engine == "batched" and kind is not CoalescerKind.PAC:
            return "auto"
        return engine

    def _resolve_engine(self, engine: str) -> str:
        """Resolve the requested engine to ``"reference"`` or ``"batched"``.

        The batched kernel exists only for the PAC arm and skips the
        per-cycle state that telemetry probes and span tracers observe;
        active fault injection likewise targets the reference execution
        path. ``auto`` demotes to the reference engine in those cases
        (emitting a ``demote`` event when the event log is active);
        ``batched`` raises instead of silently changing behaviour.
        """
        if engine == "reference":
            return "reference"
        if self.kind != CoalescerKind.PAC:
            if engine == "batched":
                raise ValueError(
                    "engine='batched' implements only the PAC arm; "
                    f"got coalescer={self.kind.value!r}"
                )
            return "reference"
        from repro.faults import active as faults_active

        blockers = []
        if self.telemetry is not None:
            blockers.append("telemetry")
        if self.spans is not None:
            blockers.append("spans")
        if faults_active().enabled:
            blockers.append("faults")
        if not blockers:
            return "batched"
        if engine == "batched":
            raise ValueError(
                "engine='batched' is incompatible with "
                f"{'+'.join(blockers)} — use engine='reference' (or "
                "'auto' to demote automatically)"
            )
        from repro.telemetry import events as ev

        log = ev.active()
        if log.enabled:
            log.emit(ev.Demoted(
                rung="engine:batched->reference",
                label="+".join(blockers),
            ))
        return "reference"

    def _resolve_frontend_engine(self, engine: str) -> str:
        """Resolve the front-end (trace -> raw stream) engine.

        Unlike the coalescer kernel, the cache front-end is independent
        of the coalescer arm, so ``auto`` resolves to the batched
        hierarchy (:class:`repro.cache.batched.BatchedCacheHierarchy`)
        for *every* arm. The blockers match the coalescer's — the
        batched front-end skips the per-emission state telemetry/span
        probes observe, and active fault injection targets the
        reference path — and ``auto`` demotes per component, logging
        its own ``demote`` event under the ``engine:frontend`` rung.
        """
        if engine == "reference":
            return "reference"
        from repro.faults import active as faults_active

        blockers = []
        if self.telemetry is not None:
            blockers.append("telemetry")
        if self.spans is not None:
            blockers.append("spans")
        if faults_active().enabled:
            blockers.append("faults")
        if not blockers:
            return "batched"
        if engine == "batched":
            # Unreachable today: _resolve_engine already raised for
            # every explicit-batched blocker combination. Kept so the
            # front-end resolver stands on its own.
            raise ValueError(
                "engine='batched' is incompatible with "
                f"{'+'.join(blockers)} — use engine='reference' (or "
                "'auto' to demote automatically)"
            )
        from repro.telemetry import events as ev

        log = ev.active()
        if log.enabled:
            log.emit(ev.Demoted(
                rung="engine:frontend:batched->reference",
                label="+".join(blockers),
            ))
        return "reference"

    def _resolve_backend_engine(self, engine: str) -> str:
        """Resolve the back-end (memory device) engine.

        Every protocol has a batched twin
        (:class:`repro.hmc.batched.BatchedHMCDevice` /
        ``BatchedHBMDevice`` / :class:`repro.ddr.batched.
        BatchedDDRDevice`), so like the front-end this resolution is
        arm-independent. The blockers match the other two components' —
        the batched device defers every observable side effect past the
        per-packet probe/span windows, and active fault injection
        targets the reference path — and ``auto`` demotes per
        component, logging its own ``demote`` event under the
        ``engine:backend`` rung (ordered after the front-end's).
        """
        if engine == "reference":
            return "reference"
        from repro.faults import active as faults_active

        blockers = []
        if self.telemetry is not None:
            blockers.append("telemetry")
        if self.spans is not None:
            blockers.append("spans")
        if faults_active().enabled:
            blockers.append("faults")
        if not blockers:
            return "batched"
        if engine == "batched":
            # Unreachable today: _resolve_engine already raised for
            # every explicit-batched blocker combination. Kept so the
            # back-end resolver stands on its own.
            raise ValueError(
                "engine='batched' is incompatible with "
                f"{'+'.join(blockers)} — use engine='reference' (or "
                "'auto' to demote automatically)"
            )
        from repro.telemetry import events as ev

        log = ev.active()
        if log.enabled:
            log.emit(ev.Demoted(
                rung="engine:backend:batched->reference",
                label="+".join(blockers),
            ))
        return "reference"

    @property
    def hierarchy(self) -> CacheHierarchy:
        if self._hierarchy is None:
            if self.frontend_engine == "batched":
                from repro.cache.batched import BatchedCacheHierarchy

                hierarchy_cls = BatchedCacheHierarchy
            else:
                hierarchy_cls = CacheHierarchy
            # Fine-grain mode traces demand accesses at their CPU data
            # size; line-granular prefetch traffic would drown the
            # Figure 10b size distribution, so the prefetcher is off
            # there.
            self._hierarchy = hierarchy_cls(
                self.config.cache,
                n_cores=self.config.n_cores,
                prefetch_enabled=not self.fine_grain,
                probes=self._probes.scope("cache"),
                spans=self._span_rec,
            )
        return self._hierarchy

    @hierarchy.setter
    def hierarchy(self, value: CacheHierarchy) -> None:
        self._hierarchy = value

    def _build_coalescer(
        self, probes=NULL_TELEMETRY, spans=NULL_SPANS
    ) -> Coalescer:
        if self.kind == CoalescerKind.NONE:
            return NullCoalescer(
                self.config.pac.n_mshrs, probes=probes.scope("none"),
                spans=spans,
            )
        if self.kind == CoalescerKind.DMC:
            return MSHRBasedDMC(
                self.config.pac.n_mshrs, probes=probes.scope("dmc"),
                spans=spans,
            )
        if self.kind == CoalescerKind.SORT:
            from repro.mshr.sorting import SortingNetworkCoalescer

            return SortingNetworkCoalescer(
                window=self.config.pac.n_streams,
                timeout_cycles=self.config.pac.timeout_cycles,
                n_mshrs=self.config.pac.n_mshrs,
                protocol=self.protocol,
            )
        pac_cfg = self.config.pac
        if self.fine_grain and not pac_cfg.fine_grain:
            from dataclasses import replace

            pac_cfg = replace(pac_cfg, fine_grain=True)
        cls = (
            BatchedPagedAdaptiveCoalescer
            if self.engine == "batched"
            else PagedAdaptiveCoalescer
        )
        return cls(
            pac_cfg, protocol=self.protocol, probes=probes.scope("pac"),
            spans=spans,
        )

    # ------------------------------------------------------------------ #

    def build_trace(
        self,
        benchmarks: Sequence[str],
        n_accesses: int,
        seed: Optional[int] = None,
        scale=1.0,
    ) -> AccessTrace:
        """Generate and translate the physical-address trace.

        With multiple benchmark names, each runs as a separate *process*
        with its own page table over a shared frame pool, pinned to a
        disjoint core subset and interleaved in time — the paper's
        multiprocessing mode (Figure 6b).

        A ``"reference"`` front-end engine pins generation to the
        retained scalar generators (where one exists); the vectorized
        generators are bit-identical, so the two paths produce the same
        trace.
        """
        if not benchmarks:
            raise ValueError("need at least one benchmark")
        if self.frontend_engine == "reference":
            from repro.workloads.base import reference_trace_gen

            with reference_trace_gen():
                return self._build_trace(benchmarks, n_accesses, seed, scale)
        return self._build_trace(benchmarks, n_accesses, seed, scale)

    def _build_trace(
        self,
        benchmarks: Sequence[str],
        n_accesses: int,
        seed: Optional[int],
        scale,
    ) -> AccessTrace:
        seed = self.config.seed if seed is None else seed
        if self.spans is not None:
            # Bind the resolved run seed so serial and parallel suites
            # derive the same sampling offset.
            self.spans.bind(seed=seed)
        allocator = FrameAllocator(
            total_frames=self.config.hmc.capacity_bytes // 4096,
            shuffle=True,
            seed=derive_seed(seed, "frames"),
        )
        n_procs = len(benchmarks)
        cores_per_proc = max(1, self.config.n_cores // n_procs)
        merged: Optional[AccessTrace] = None
        for pid, name in enumerate(benchmarks):
            generator = get_workload(
                name, seed=derive_seed(seed, name, str(pid)), scale=scale
            )
            share = n_accesses // n_procs + (1 if pid < n_accesses % n_procs else 0)
            trace = generator.generate(share, n_cores=cores_per_proc)
            pagetable = PageTable(allocator, pid=pid)
            trace.addrs = pagetable.translate_array(trace.addrs)
            # Pin this process to its core subset.
            trace.cores = trace.cores + pid * cores_per_proc
            merged = trace if merged is None else merged.concat(trace)
        return merged.sorted_by_cycle()

    def run_trace(
        self, trace: AccessTrace, benchmark: str = "custom",
        raw: Optional[RawStream] = None,
    ) -> RunResult:
        """Push a translated trace through caches, coalescer, and memory.

        ``raw`` optionally supplies an already-computed raw request
        stream for this trace (produced by this system's hierarchy, or a
        shared one installed as ``self.hierarchy``); the cache pass is
        then skipped. The hierarchy pass is deterministic, so reusing
        one stream across coalescer arms is bit-identical to
        re-processing the same trace per arm.
        """
        if raw is None:
            if self.fine_grain:
                raw = self.hierarchy.fine_grain_stream(trace)
            else:
                raw = self.hierarchy.process(trace)
        cache_metrics = self.hierarchy.summary_metrics(len(raw.requests))
        trace_end = int(trace.cycles[-1]) if len(trace) else 0
        outcome = self.coalescer.process(raw.requests, self.device)
        if self.backend_engine == "batched":
            # Merge the device's deferred window accounting before
            # build_result reads its stats/energy surfaces.
            self.device.sync()
        span_trace = None
        if self.spans is not None:
            span_trace = self.spans.finalize(
                benchmark=benchmark,
                coalescer=self.kind.value,
                n_accesses=len(trace),
                n_raw=outcome.n_raw,
                config_hash=self.config.config_hash(),
            )
        return build_result(
            benchmark=benchmark,
            coalescer_name=self.kind.value,
            n_accesses=len(trace),
            outcome=outcome,
            device=self.device,
            trace_end_cycle=trace_end,
            pac_metrics=self._pac_metrics(),
            cache_metrics=cache_metrics,
            telemetry=self.telemetry,
            spans=span_trace,
        )

    def run_raw(
        self,
        requests,
        benchmark: str,
        n_accesses: int,
        trace_end_cycle: int,
        cache_metrics: dict,
    ) -> RunResult:
        """Run the coalescer+device half against a pre-computed raw
        request stream.

        This is the phase-2 entry point of the artifact pipeline: the
        trace and hierarchy pass happened elsewhere (possibly in another
        process, possibly last week), so the caller supplies the stream,
        the trace geometry, and the hierarchy's summary metrics.
        Telemetry and spans observe the cache pass, which this path
        skips — probe runs must go end-to-end instead.
        """
        if self.telemetry is not None or self.spans is not None:
            raise ValueError(
                "run_raw skips the cache pass, which telemetry/spans "
                "probes must observe — use run_trace/run for probe runs"
            )
        outcome = self.coalescer.process(requests, self.device)
        if self.backend_engine == "batched":
            self.device.sync()
        return build_result(
            benchmark=benchmark,
            coalescer_name=self.kind.value,
            n_accesses=n_accesses,
            outcome=outcome,
            device=self.device,
            trace_end_cycle=trace_end_cycle,
            pac_metrics=self._pac_metrics(),
            cache_metrics=cache_metrics,
            telemetry=None,
            spans=None,
        )

    def _pac_metrics(self) -> Optional[dict]:
        if not isinstance(self.coalescer, PagedAdaptiveCoalescer):
            return None
        pac = self.coalescer
        return {
            "bypass_fraction": pac.bypass_fraction,
            "mean_active_streams": pac.mean_active_streams,
            "mean_request_latency": pac.mean_request_latency,
            "mean_maq_fill_cycles": pac.mean_maq_fill_cycles,
            "mean_stage2_cycles": pac.mean_stage2_cycles,
            "mean_stage3_cycles": pac.mean_stage3_cycles,
            "direct_requests": float(pac.stats.count("direct_requests")),
        }

    def run(
        self,
        benchmark: str,
        n_accesses: int,
        seed: Optional[int] = None,
        extra_benchmarks: Sequence[str] = (),
        scale=1.0,
    ) -> RunResult:
        """Generate + run in one step. ``scale`` selects the NAS-style
        size class (number or letter; see repro.workloads.SIZE_CLASSES)."""
        names = [benchmark, *extra_benchmarks]
        trace = self.build_trace(names, n_accesses, seed=seed, scale=scale)
        label = "+".join(names)
        return self.run_trace(trace, benchmark=label)
