"""Run drivers: one-call benchmark execution and suite sweeps.

This is the primary user-facing API::

    from repro.engine.driver import run_benchmark, run_comparison, CoalescerKind

    result = run_benchmark("gs", coalescer=CoalescerKind.PAC)
    trio = run_comparison("gs")   # none / dmc / pac on the same trace
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence

from repro.config import SimulationConfig, TABLE1
from repro.core.protocols import MemoryProtocol
from repro.engine.results import RunResult
from repro.engine.system import CoalescerKind, System
from repro.faults import FaultInjector, NullInjector, installed, resolve_plan
from repro.telemetry import events as ev
from repro.workloads import BENCHMARK_NAMES

#: Default trace length: long enough for steady-state coalescing
#: behaviour, short enough for interactive runs.
DEFAULT_ACCESSES = 60_000


def _fault_scope(faults):
    """Resolve a ``faults=`` argument into an installed-injector scope.

    A resolved plan installs a process-scoped
    :class:`~repro.faults.FaultInjector` for the duration of the call;
    no plan installs a *fresh* :class:`~repro.faults.NullInjector`,
    which both disables injection and (by displacing the pristine
    singleton) stops ``$REPRO_FAULTS`` from auto-installing underneath
    an explicit ``faults=False``.
    """
    plan = resolve_plan(faults)
    return installed(
        FaultInjector(plan) if plan is not None else NullInjector()
    )


def run_benchmark(
    benchmark: str,
    coalescer: CoalescerKind = CoalescerKind.PAC,
    n_accesses: int = DEFAULT_ACCESSES,
    config: SimulationConfig = TABLE1,
    seed: Optional[int] = None,
    protocol: Optional[MemoryProtocol] = None,
    device: str = "hmc",
    fine_grain: bool = False,
    extra_benchmarks: Sequence[str] = (),
    scale=1.0,
    telemetry=False,
    spans=False,
    faults=None,
    events=None,
    engine: str = "auto",
) -> RunResult:
    """Run one benchmark through one coalescer configuration.

    ``extra_benchmarks`` adds co-running processes (the paper's
    multiprocessing mode); ``fine_grain`` enables the Figure 10b
    data-size coalescing mode; ``device`` selects ``"hmc"`` or ``"hbm"``.
    ``telemetry=True`` (or a :class:`repro.telemetry.TelemetryRegistry`)
    collects the windowed probe timeline onto ``result.telemetry``.
    ``spans=True`` (or an int sample rate, or a
    :class:`repro.telemetry.SpanRecorder`) traces sampled per-request
    lifecycle spans onto ``result.spans``. ``faults`` activates
    deterministic fault injection (:mod:`repro.faults`): a plan, a spec
    string, ``None`` (consult ``$REPRO_FAULTS``), or ``False`` to
    force-disable; a single in-process run has no instrumented sites of
    its own, so plans only matter here through code this call reaches
    (e.g. the artifact store in cached flows). ``events`` selects the
    structured event log (:mod:`repro.telemetry.events`): ``None``
    keeps whatever is active (including a ``$REPRO_EVENTS`` sink), a
    path or :class:`~repro.telemetry.events.EventLog` installs one for
    the call, ``False`` force-disables. ``engine`` selects the
    execution path per component — the coalescer kernel (``"batched"``
    is the bit-identical array-backed kernel, PAC-only), the cache
    front-end, and the memory-device back-end (every protocol has a
    batched twin): ``"reference"`` pins all three to the per-request
    object pipelines, ``"auto"`` (default) resolves each component to
    its batched engine when applicable, demoting to reference — with
    one ``demote`` event per component — when telemetry, spans, a
    non-PAC arm (coalescer only), or active fault injection make the
    batched path inapplicable.
    """
    with ev.installed(ev.resolve_events(events)) as log, _fault_scope(faults):
        if log.enabled:
            log.emit(ev.RunStarted(
                benchmark=benchmark, coalescer=coalescer.value,
                n_accesses=n_accesses, seed=seed, device=device,
            ))
        system = System(
            config=config,
            coalescer=coalescer,
            protocol=protocol,
            device=device,
            fine_grain=fine_grain,
            telemetry=telemetry,
            spans=spans,
            engine=engine,
        )
        result = system.run(
            benchmark, n_accesses, seed=seed,
            extra_benchmarks=extra_benchmarks, scale=scale,
        )
        if log.enabled:
            log.emit(ev.RunCompleted(
                benchmark=benchmark, coalescer=coalescer.value,
                n_raw=result.n_raw, n_issued=result.n_issued,
                runtime_cycles=result.runtime_cycles,
            ))
        return result


def run_comparison(
    benchmark: str,
    kinds: Iterable[CoalescerKind] = (
        CoalescerKind.NONE,
        CoalescerKind.DMC,
        CoalescerKind.PAC,
    ),
    n_accesses: int = DEFAULT_ACCESSES,
    config: SimulationConfig = TABLE1,
    seed: Optional[int] = None,
    device: str = "hmc",
    extra_benchmarks: Sequence[str] = (),
    telemetry=False,
    spans=False,
    use_artifact_cache: bool = True,
    faults=None,
    events=None,
    engine: str = "auto",
) -> Dict[CoalescerKind, RunResult]:
    """Run the same trace through several coalescer configurations.

    Every arm sees the identical trace and raw request stream. With
    telemetry and spans off (the common sweep configuration) the trace
    and the cache-hierarchy pass — both deterministic in (seed, config)
    and independent of the coalescer arm — are computed once via the
    content-addressed artifact cache (:mod:`repro.artifacts`) and
    shared, which is bit-identical to regenerating them per arm; a
    repeated comparison reloads the prefix from disk instead of
    recomputing it (``use_artifact_cache=False`` opts out). When either
    probe facility is on, each arm runs end-to-end so its registry /
    recorder observes its own cache pass. ``faults`` installs a
    process-scoped fault injector for the duration of the comparison
    (the artifact-store sites are live on the cached path). ``engine``
    applies per arm (:meth:`System.arm_engine`): ``"batched"`` pins the
    PAC arms to the fast kernel while non-PAC arms resolve ``"auto"``.
    The shared trace+cache prefix resolves the same knob for its
    front-end (``"reference"`` forces the scalar generators and
    hierarchy; the default takes the batched front-end — bit-identical
    either way, so cached artifacts are engine-invariant). Each arm's
    back-end resolves likewise: the default runs the batched device
    twin, bit-identical by the same contract.
    """
    out: Dict[CoalescerKind, RunResult] = {}
    with ev.installed(ev.resolve_events(events)) as log, _fault_scope(faults):
        if telemetry or spans:
            for kind in kinds:
                out[kind] = run_benchmark(
                    benchmark,
                    coalescer=kind,
                    n_accesses=n_accesses,
                    config=config,
                    seed=seed,
                    device=device,
                    extra_benchmarks=extra_benchmarks,
                    telemetry=bool(telemetry),
                    spans=spans if isinstance(spans, (bool, int)) else bool(spans),
                    faults=False,  # the comparison-wide scope is installed
                    engine=System.arm_engine(kind, engine),
                )
            return out

        from repro.artifacts import load_or_compute_trace_pass

        tp = load_or_compute_trace_pass(
            benchmark,
            n_accesses,
            config=config,
            seed=seed,
            device=device,
            extra_benchmarks=tuple(extra_benchmarks),
            use_cache=use_artifact_cache,
            engine=engine,
        )
        requests = tp.requests()
        for kind in kinds:
            if log.enabled:
                log.emit(ev.RunStarted(
                    benchmark=benchmark, coalescer=kind.value,
                    n_accesses=n_accesses, seed=seed, device=device,
                ))
            system = System(
                config=config, coalescer=kind, device=device,
                engine=System.arm_engine(kind, engine),
            )
            result = system.run_raw(
                requests,
                benchmark=tp.benchmark,
                n_accesses=tp.n_accesses,
                trace_end_cycle=tp.trace_end_cycle,
                cache_metrics=tp.cache_metrics,
            )
            out[kind] = result
            if log.enabled:
                log.emit(ev.RunCompleted(
                    benchmark=benchmark, coalescer=kind.value,
                    n_raw=result.n_raw, n_issued=result.n_issued,
                    runtime_cycles=result.runtime_cycles,
                ))
        return out


def run_suite(
    coalescer: CoalescerKind = CoalescerKind.PAC,
    benchmarks: Sequence[str] = BENCHMARK_NAMES,
    n_accesses: int = DEFAULT_ACCESSES,
    config: SimulationConfig = TABLE1,
    seed: Optional[int] = None,
    device: str = "hmc",
    protocol: Optional[MemoryProtocol] = None,
    fine_grain: bool = False,
    extra_benchmarks: Sequence[str] = (),
    scale=1.0,
    telemetry=False,
    spans=False,
    faults=None,
    events=None,
    engine: str = "auto",
) -> Dict[str, RunResult]:
    """Run every benchmark through one coalescer configuration.

    Every knob of :func:`run_benchmark` forwards (``device``,
    ``protocol``, ``fine_grain``, ``extra_benchmarks``, ``scale``,
    ``telemetry``, ``spans``, ``faults``, ``events``), so a
    whole-suite sweep can target HBM/DDR, the fine-grain mode, or
    co-running mixes without dropping down to per-benchmark calls.
    ``faults`` installs one process-scoped injector spanning the whole
    sweep; ``events`` likewise installs one suite-wide event-log scope.
    """
    with ev.installed(ev.resolve_events(events)), _fault_scope(faults):
        return {
            name: run_benchmark(
                name,
                coalescer=coalescer,
                n_accesses=n_accesses,
                config=config,
                seed=seed,
                device=device,
                protocol=protocol,
                fine_grain=fine_grain,
                extra_benchmarks=extra_benchmarks,
                scale=scale,
                telemetry=telemetry,
                spans=spans,
                faults=False,  # the suite-wide scope is installed
                engine=engine,
            )
            for name in benchmarks
        }
