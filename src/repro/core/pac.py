"""The paged adaptive coalescer — end-to-end (Figure 3).

:class:`PagedAdaptiveCoalescer` implements the
:class:`repro.mshr.dmc.Coalescer` interface: it consumes the LLC's raw
request stream in cycle order and drives the memory device, modelling

* stage 1 aggregation with the 16-cycle timeout and fence handling,
* stages 2–3 via :class:`repro.core.network.CoalescingNetwork`,
* the MAQ between the network and the MSHRs,
* the adaptive MSHRs (multi-block spans, OP bit, packet merging),
* the network controller's idle bypass — while the MAQ is empty and
  MSHRs are free the whole network is disabled and raw requests go
  straight into the MSHRs; it re-enables once every MSHR is occupied
  (Section 3.2),
* atomics routed around the coalescer (Section 3.3.1).

Admission into stage 1 is paced at one request per cycle; structural
stalls push the *entry clock* back so the backlog bunches into shared
aggregation windows — the blocked-cache cascade (see ARCHITECTURE.md,
"Timing model").
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.common.types import (
    CACHE_LINE_BYTES,
    CoalescedRequest,
    MemOp,
    MemoryRequest,
)
from repro.config import PACConfig
from repro.core.aggregator import PagedRequestAggregator
from repro.core.maq import MemoryAccessQueue
from repro.core.network import CoalescingNetwork
from repro.core.protocols import HMC2, HMC2_FINE, MemoryProtocol
from repro.mshr.adaptive import AdaptiveMSHRFile
from repro.mshr.dmc import Coalescer, CoalesceOutcome, MemoryDevice
from repro.telemetry import NULL_SPANS, NULL_TELEMETRY

#: Sampling period for coalescing-stream occupancy (Figure 11b: "we
#: accumulate the number of occupied coalescing streams every 16 cycles").
OCCUPANCY_SAMPLE_CYCLES = 16


class PagedAdaptiveCoalescer(Coalescer):
    """PAC: stage-1 aggregator + pipelined network + MAQ + adaptive MSHRs."""

    def __init__(
        self,
        config: Optional[PACConfig] = None,
        protocol: Optional[MemoryProtocol] = None,
        probes=NULL_TELEMETRY,
        spans=NULL_SPANS,
    ) -> None:
        super().__init__("pac")
        self.config = config if config is not None else PACConfig()
        if protocol is None:
            protocol = HMC2_FINE if self.config.fine_grain else HMC2
        self.protocol = protocol
        self.aggregator = PagedRequestAggregator(
            protocol,
            n_streams=self.config.n_streams,
            timeout_cycles=self.config.timeout_cycles,
            probes=probes.scope("stage1"),
        )
        self.network = CoalescingNetwork(protocol, probes=probes)
        maq_probes = probes.scope("maq")
        self.maq = MemoryAccessQueue(self.config.maq_entries, probes=maq_probes)
        self.mshrs = AdaptiveMSHRFile(
            self.config.n_mshrs, name="pac.amshr", probes=probes.scope("mshr")
        )
        # Peeked before each advance() call: a no-release advance has no
        # side effects, and most events have nothing due. The aggregator
        # deadline heap, MAQ deque, and MSHR slot table are likewise
        # bound once so `_advance` (run per raw request) can guard each
        # sub-step without a call: all three containers are mutated in
        # place and never rebound by their owners.
        self._mshr_heap = self.mshrs._release_heap
        self._mshr_slots = self.mshrs._slots
        self._mshr_cover = self.mshrs._cover
        self._agg_heap = self.aggregator._deadline_heap
        self._maq_items = self.maq._fifo._items
        self._idle_bypass = self.config.idle_bypass
        self._n_mshrs = self.config.n_mshrs
        #: Earliest cycle at which the MAQ head could possibly drain
        #: again after a failed attempt (the MSHRs were full with no
        #: release due). Until then the head/MSHR state is frozen — no
        #: release, merge, or allocation can happen — so `_advance`
        #: skips the poll and only replays its CAM-comparison count.
        self._maq_stall_until = 0
        #: Network controller state: disabled while idle (Section 3.2).
        self.network_enabled = not self.config.idle_bypass
        self._last_sample = 0
        # Controller-level probes (the `repro trace` bypass-rate series
        # joins direct_requests with the network's bypass counters).
        ctrl = probes.scope("controller")
        self._probes_on = probes.enabled
        #: Span tracer: stage boundaries are stamped as sampled requests
        #: cross admission, stage-1 flush, network exit, MAQ pop, MSHR
        #: merge release, and device completion.
        self._spans = spans
        self._spans_on = spans.enabled
        self._t_direct = ctrl.counter("direct_requests")
        self._t_enables = ctrl.counter("network_enables")
        self._t_disables = ctrl.counter("network_disables")
        self._t_entry_wait = ctrl.gauge("entry_wait")
        self._t_maq_occupancy = maq_probes.gauge("occupancy")
        # Pre-resolved stat handles for the per-request hot path.
        stats = self.stats
        self._c_atomics = stats.counter("atomics")
        self._c_fences = stats.counter("fences")
        self._c_net_enables = stats.counter("network_enables")
        self._c_net_disables = stats.counter("network_disables")
        self._c_pipeline_stalls = stats.counter("pipeline_stall_cycles")
        self._c_mshr_cam = stats.counter("mshr_cam_comparisons")
        self._c_mshr_merges = stats.counter("mshr_packet_merges")
        self._c_direct = stats.counter("direct_requests")
        self._c_direct_cam = stats.counter("direct_cam_comparisons")
        self._acc_latency = stats.accumulator("request_latency")
        self._h_occupancy = self.aggregator.stats.histogram(
            "occupancy_samples"
        )

    # ------------------------------------------------------------------ #
    # main loop

    def process(
        self, raw: Iterable[MemoryRequest], memory: MemoryDevice
    ) -> CoalesceOutcome:
        out = CoalesceOutcome()
        self._out = out
        self._memory = memory
        #: Cycle at which stage 1 can next accept a request: one admission
        #: per cycle, pushed back whenever the MAQ backpressures the
        #: pipeline. A stalled pipeline makes the backlog *bunch up*, so
        #: queued requests land in shared aggregation windows — the
        #: behaviour that lets PAC mine a congested miss queue.
        self._entry_clock = 0
        self._arrivals = {}
        latency_add = self._acc_latency.add

        spans = self._spans
        spans_on = self._spans_on
        probes_on = self._probes_on
        aggregator_insert = self.aggregator.insert
        flush_stream = self._flush_stream
        advance = self._advance
        atomic_op = MemOp.ATOMIC
        fence_op = MemOp.FENCE

        arrivals = self._arrivals
        mshr_slots = self._mshr_slots
        n_mshrs = self._n_mshrs
        n_raw = 0
        stall_cycles = 0
        for req in raw:
            n_raw += 1
            cycle = req.cycle
            now = self._entry_clock
            if cycle > now:
                now = cycle
            # Service accounting measures from *entry* into the miss
            # path — the moment an in-order core would have issued the
            # miss — so the open-loop backlog does not inflate it.
            arrivals[req.req_id] = now
            stall_cycles += now - cycle
            if probes_on:
                self._t_entry_wait.observe(now, now - cycle)
            if spans_on:
                # index = raw-stream ordinal: deterministic across
                # serial/parallel runs, unlike the process-global req_id.
                out.n_raw = n_raw
                spans.admit(n_raw - 1, req, now)
            self._entry_clock = now + 1
            advance(now)

            if req.op == atomic_op:
                # Atomics go straight to the memory controller,
                # uncoalesced, not even via the MSHRs (Section 3.3.1).
                packet = CoalescedRequest(
                    addr=req.line_addr, size=max(req.size, 16), op=MemOp.STORE,
                    constituents=(req.req_id,), issue_cycle=now,
                    source="atomic",
                )
                completion = memory.submit(packet, now)
                out.issued.append(packet)
                out.n_issued += 1
                out.last_completion_cycle = max(
                    out.last_completion_cycle, completion
                )
                out.account_service(now, completion)
                if spans_on:
                    spans.mark(req.req_id, "device", completion)
                self._c_atomics.value += 1
                continue

            if req.op == fence_op:
                for stream in self.aggregator.fence(now):
                    flush_stream(stream, now)
                self._c_fences.value += 1
                continue

            if not self.network_enabled:
                # Idle bypass: straight into the MSHRs with ~1 cycle of
                # latency; the network stays off until the MSHRs fill.
                if len(mshr_slots) >= n_mshrs:
                    self.network_enabled = True
                    self._c_net_enables.value += 1
                    if probes_on:
                        self._t_enables.add(now)
                else:
                    self._direct_to_mshr(req, now)
                    latency_add(1.0)
                    continue

            flushed = aggregator_insert(req, now)
            if flushed:
                for stream in flushed:
                    flush_stream(stream, now)
        out.n_raw = n_raw
        out.stall_cycles += stall_cycles

        # End of stream: drain everything that is still buffered; each
        # remaining stream flushes at its own timeout deadline.
        for stream in sorted(
            self.aggregator.drain(),
            key=lambda s: s.deadline(self.config.timeout_cycles),
        ):
            self._flush_stream(
                stream, stream.deadline(self.config.timeout_cycles)
            )
        self._drain_maq(until_empty=True)

        # Figure 7 accounting: the comparisons of the *coalescing
        # procedure* — the stage-1 page-granular CAM (plus the direct
        # path's CAM, which serves as its aggregation check). The
        # packet-dispatch MSHR CAM is common to every design and is
        # tracked separately in ``stats['mshr_cam_comparisons']``.
        out.comparisons = self.aggregator.stats.count(
            "comparisons"
        ) + self.stats.count("direct_cam_comparisons")
        return out

    # ------------------------------------------------------------------ #
    # internals

    def _advance(self, now: int) -> None:
        """Process all timeout flushes due at or before ``now`` and drain
        the MAQ into the MSHRs; also take occupancy samples.

        Runs once per raw request, so every sub-step is guarded by a
        container peek before paying its call: ``expire`` by the deadline
        heap, the MAQ drain by the head's ready cycle, the MSHR advance
        by the release heap, and the idle-disable check is inlined from
        :meth:`_maybe_disable` (which stays the canonical definition).
        """
        agg_heap = self._agg_heap
        if agg_heap and agg_heap[0][0] <= now:
            due = self.aggregator.expire(now)
        else:
            due = None
        if due:
            timeout = self.config.timeout_cycles
            # expire() pops its heap in (deadline, alloc) order, so the
            # due list arrives already deadline-sorted.
            deadlines = [s.deadline(timeout) for s in due]
            self._sample_windows(now, deadlines)
            for stream in due:
                self._flush_stream(stream, stream.deadline(timeout))
        elif self._last_sample + OCCUPANCY_SAMPLE_CYCLES <= now:
            # Guard inlined from _sample_windows: most calls have no
            # sample window due.
            self._sample_windows(now, ())
        maq_items = self._maq_items
        if maq_items and maq_items[0][1] <= now:
            if now < self._maq_stall_until:
                # The head is ready but the MSHRs are provably still
                # full (no release before _maq_stall_until): the drain
                # attempt would fail exactly as before. Its only side
                # effect is the MAQ->MSHR CAM sweep over the (full)
                # slot file — replay that and skip the poll.
                self._c_mshr_cam.value += self._n_mshrs
            else:
                self._drain_maq(now=now)
        # Apply any memory responses due by now even when the MAQ is
        # empty — the controller's disable condition reads MSHR occupancy.
        heap = self._mshr_heap
        if heap and heap[0][0] <= now:
            self.mshrs.advance(now)
        if (
            self._idle_bypass
            and self.network_enabled
            and not maq_items
            and len(self._mshr_slots) < self._n_mshrs
            and not self.aggregator.streams
        ):
            self.network_enabled = False
            self._c_net_disables.value += 1
            if self._probes_on:
                self._t_disables.add(now)

    def _sample_windows(self, now: int, expired_deadlines) -> None:
        """Record the per-16-cycle occupancy samples elapsed up to
        ``now`` (Figure 11b). Occupancy is piecewise constant: the
        just-expired streams were still resident until their deadlines,
        so windows before a deadline see them. Windows past the last
        deadline all sample the same surviving occupancy and are recorded
        in one shot — long idle gaps stay O(1).
        """
        if self._last_sample + OCCUPANCY_SAMPLE_CYCLES > now:
            return
        hist = self._h_occupancy
        base = self.aggregator.occupancy  # survivors (already expired out)
        last_deadline = expired_deadlines[-1] if expired_deadlines else None
        while (
            last_deadline is not None
            and self._last_sample + OCCUPANCY_SAMPLE_CYCLES
            <= min(now, last_deadline)
        ):
            window_start = self._last_sample
            self._last_sample += OCCUPANCY_SAMPLE_CYCLES
            # A stream counts for a window if it was still resident when
            # the window opened.
            still_resident = sum(
                1 for d in expired_deadlines if d > window_start
            )
            hist.add(base + still_resident)
        remaining = (now - self._last_sample) // OCCUPANCY_SAMPLE_CYCLES
        if remaining > 0:
            hist.add(base, int(remaining))
            self._last_sample += remaining * OCCUPANCY_SAMPLE_CYCLES

    def _maybe_disable(self, now: int) -> None:
        if (
            self.config.idle_bypass
            and self.network_enabled
            and self.maq.empty
            and self.mshrs.has_free
            and self.aggregator.occupancy == 0
        ):
            self.network_enabled = False
            self._c_net_disables.value += 1
            if self._probes_on:
                self._t_disables.add(now)

    def _flush_stream(self, stream, flush_cycle: int) -> None:
        """Send a stage-1 stream through the network and into the MAQ."""
        # Stage-1 residency: the paper reports the overall PAC latency as
        # timeout-dominated; we record the stream's aggregation residency
        # per request it carried. Cycle samples are integral floats, so
        # the O(1) repeated-add is bit-identical to per-request add()s.
        sample = float(max(1, flush_cycle - stream.alloc_cycle))
        self._acc_latency.add_repeat(sample, stream.n_requests)
        if self._spans_on:
            # Stage-1 residency ends at the flush; the grain lists repeat
            # multi-grain req_ids, which mark_many de-duplicates.
            for rids in stream.grain_requests.values():
                self._spans.mark_many(rids, "stage1", flush_cycle)
        packets = self.network.flush_stream(stream, flush_cycle)
        for packet in packets:
            if self._spans_on:
                self._spans.mark_many(
                    packet.constituents, "network", packet.issue_cycle
                )
            self._enqueue_packet(packet)

    def _enqueue_packet(self, packet: CoalescedRequest) -> None:
        ready = packet.issue_cycle
        if not self.maq.push(packet, ready):
            # MAQ full: the pipeline stalls and the cache blocks until the
            # head drains (Section 3.2). Force one drain; stage 1 cannot
            # admit new requests until then (backpressure).
            waited = self._drain_one(force=True)
            self._entry_clock = max(self._entry_clock, waited)
            self._c_pipeline_stalls.value += max(0, waited - ready)
            if not self.maq.push(packet, max(ready, waited)):
                raise AssertionError("MAQ still full after forced drain")

    def _account_packet(self, packet, completion: int) -> None:
        """Exact service accounting: every raw request covered by this
        packet is satisfied when the packet's response returns."""
        arrivals = self._arrivals
        pop = arrivals.pop
        served = 0
        cycles = 0
        for rid in packet.constituents:
            arrival = pop(rid, None)
            if arrival is not None:
                if completion > arrival:
                    cycles += completion - arrival
                served += 1
        if served:
            out = self._out
            out.raw_service_cycles += cycles
            out.raw_serviced += served

    def _complete_merge(
        self, packet: CoalescedRequest, merged, cycle: int,
        from_maq: bool = True,
    ) -> None:
        """Shared tail of every packet-merge site: service accounting
        against the owning entry's release, span stamps, merge counter.

        ``from_maq`` distinguishes the MAQ drain sites (which also pop
        the MAQ and stamp the ``maq`` span stage) from the direct path.
        """
        if from_maq:
            self.maq.pop()
            if self._probes_on:
                self._t_maq_occupancy.observe(cycle, len(self.maq))
        self._out.n_merged += packet.n_raw
        if merged.release_cycle is not None:
            self._account_packet(packet, merged.release_cycle)
            if self._spans_on:
                if from_maq:
                    self._spans.mark_many(packet.constituents, "maq", cycle)
                self._spans.mark_many(
                    packet.constituents, "mshr", merged.release_cycle
                )
        self._c_mshr_merges.value += 1

    def _issue_packet(self, packet: CoalescedRequest, t: int) -> int:
        """Allocate an MSHR for ``packet``, submit it to the device, and
        do the issue-side accounting; returns the completion cycle."""
        out = self._out
        slot, _ = self.mshrs.allocate_packet(packet, t)
        completion = self._memory.submit(packet, t)
        self.mshrs.schedule_release(slot, completion)
        out.issued.append(packet)
        out.n_issued += 1
        if completion > out.last_completion_cycle:
            out.last_completion_cycle = completion
        self._account_packet(packet, completion)
        if self._spans_on:
            self._spans.mark_many(packet.constituents, "device", completion)
        return completion

    def _drain_maq(self, now: Optional[int] = None, until_empty: bool = False) -> None:
        """Pop MAQ entries whose ready time has come and hand them to the
        adaptive MSHRs (merge or allocate+dispatch). Entries whose turn
        has come but that find the MSHRs full simply wait in the MAQ —
        that is the MAQ's purpose (Section 3.1.2)."""
        maq_items = self._maq_items
        while maq_items:
            if not until_empty and now is not None and maq_items[0][1] > now:
                break
            if self._drain_one(now=now, force=until_empty) is None:
                break

    def _drain_one(
        self, now: Optional[int] = None, force: bool = False
    ) -> Optional[int]:
        """Pop the MAQ head into the MSHRs; returns the cycle at which the
        pop happened (>= the packet's ready cycle), or None when the
        MSHRs stay full through ``now`` and ``force`` is False (the
        packet waits in the MAQ)."""
        packet, ready = self._maq_items[0]
        heap = self._mshr_heap
        if heap and heap[0][0] <= ready:
            self.mshrs.advance(ready)

        # MAQ->MSHR CAM comparison (contiguity by PPN, Section 3.2) —
        # common to all designs, excluded from the Figure 7 count.
        self._c_mshr_cam.value += len(self._mshr_slots)

        # Peek the covered-block index before paying the merge call:
        # an empty bucket for the packet's first block is exactly
        # try_merge_packet's find_covering fast-fail.
        if self._mshr_cover.get(packet.addr // CACHE_LINE_BYTES):
            merged = self.mshrs.try_merge_packet(packet)
        else:
            merged = None
        if merged is not None:
            self._maq_stall_until = 0
            self._complete_merge(packet, merged, ready)
            return ready

        t = ready
        if len(self._mshr_slots) >= self._n_mshrs:
            # Apply any releases that happened between the packet's ready
            # time and the present; the pop occurs the moment a slot
            # freed, not at `now`.
            horizon = ready if now is None or now < ready else now
            released = self.mshrs.advance(horizon)
            if released:
                freed_at = min(
                    e.release_cycle for e in released
                    if e.release_cycle is not None
                )
                t = max(ready, freed_at)
            elif not force:
                # Nothing can move before the next scheduled release:
                # remember it so per-request polls skip ahead.
                release = self.mshrs.next_release_cycle()
                self._maq_stall_until = release if release is not None else 0
                return None
            else:
                release = self.mshrs.next_release_cycle()
                assert release is not None, (
                    "full adaptive MSHRs with no releases"
                )
                t = max(t, release)
                self.mshrs.advance(t)
            merged = self.mshrs.try_merge_packet(packet)
            if merged is not None:
                self._maq_stall_until = 0
                self._complete_merge(packet, merged, t)
                return t

        self._maq_stall_until = 0
        self._maq_items.popleft()  # the head we peeked above
        if self._probes_on:
            self._t_maq_occupancy.observe(t, len(self.maq))
        if self._spans_on:
            self._spans.mark_many(packet.constituents, "maq", t)
        self._issue_packet(packet, t)
        return t

    def _direct_to_mshr(self, req: MemoryRequest, now: int) -> None:
        """Network-disabled fast path: raw request straight to the MSHRs."""
        heap = self._mshr_heap
        if heap and heap[0][0] <= now:
            self.mshrs.advance(now)
        self._c_direct.value += 1
        if self._probes_on:
            self._t_direct.add(now)
        self._c_direct_cam.value += len(self._mshr_slots)
        grain = self.protocol.grain_bytes
        base = req.addr - (req.addr % grain)
        packet = CoalescedRequest(
            addr=base,
            size=grain,
            op=MemOp.STORE if req.op == MemOp.STORE else MemOp.LOAD,
            constituents=(req.req_id,),
            issue_cycle=now,
            source="pac-direct",
        )
        merged = self.mshrs.try_merge_packet(packet)
        if merged is not None:
            self._complete_merge(packet, merged, now, from_maq=False)
            return
        # The caller guarantees a free MSHR (it flips to enabled when
        # full), so allocation cannot fail here.
        self._issue_packet(packet, now)

    # ------------------------------------------------------------------ #
    # derived metrics

    @property
    def bypass_fraction(self) -> float:
        """Fraction of aggregated raw requests that skipped stages 2–3 via
        the C-bit bypass (Figure 12c)."""
        bypassed = self.network.stats.count("bypassed_requests")
        coalesced = self.network.stats.count("coalesced_requests")
        total = bypassed + coalesced
        return bypassed / total if total else 0.0

    @property
    def mean_active_streams(self) -> float:
        """Average occupied coalescing streams over non-idle samples
        (Figure 11c)."""
        hist = self.aggregator.stats.histogram("occupancy_samples")
        busy = {k: v for k, v in hist.bins.items() if k > 0}
        total = sum(busy.values())
        if not total:
            return 0.0
        return sum(k * v for k, v in busy.items()) / total

    @property
    def mean_request_latency(self) -> float:
        return self.stats.accumulator("request_latency").mean

    @property
    def mean_maq_fill_cycles(self) -> float:
        return self.maq.mean_fill_cycles

    @property
    def mean_stage2_cycles(self) -> float:
        return self.network.decoder.stats.accumulator("stage2_cycles").mean

    @property
    def mean_stage3_cycles(self) -> float:
        return self.network.assembler.stats.accumulator("stage3_cycles").mean
