"""The paged adaptive coalescer — end-to-end (Figure 3).

:class:`PagedAdaptiveCoalescer` implements the
:class:`repro.mshr.dmc.Coalescer` interface: it consumes the LLC's raw
request stream in cycle order and drives the memory device, modelling

* stage 1 aggregation with the 16-cycle timeout and fence handling,
* stages 2–3 via :class:`repro.core.network.CoalescingNetwork`,
* the MAQ between the network and the MSHRs,
* the adaptive MSHRs (multi-block spans, OP bit, packet merging),
* the network controller's idle bypass — while the MAQ is empty and
  MSHRs are free the whole network is disabled and raw requests go
  straight into the MSHRs; it re-enables once every MSHR is occupied
  (Section 3.2),
* atomics routed around the coalescer (Section 3.3.1).

Admission into stage 1 is paced at one request per cycle; structural
stalls push the *entry clock* back so the backlog bunches into shared
aggregation windows — the blocked-cache cascade (see ARCHITECTURE.md,
"Timing model").
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.common.types import (
    CACHE_LINE_BYTES,
    CoalescedRequest,
    MemOp,
    MemoryRequest,
)
from repro.config import PACConfig
from repro.core.aggregator import PagedRequestAggregator
from repro.core.maq import MemoryAccessQueue
from repro.core.network import CoalescingNetwork
from repro.core.protocols import HMC2, HMC2_FINE, MemoryProtocol
from repro.mshr.adaptive import AdaptiveMSHRFile
from repro.mshr.dmc import Coalescer, CoalesceOutcome, MemoryDevice
from repro.telemetry import NULL_SPANS, NULL_TELEMETRY

#: Sampling period for coalescing-stream occupancy (Figure 11b: "we
#: accumulate the number of occupied coalescing streams every 16 cycles").
OCCUPANCY_SAMPLE_CYCLES = 16


class PagedAdaptiveCoalescer(Coalescer):
    """PAC: stage-1 aggregator + pipelined network + MAQ + adaptive MSHRs."""

    def __init__(
        self,
        config: PACConfig = None,
        protocol: MemoryProtocol = None,
        probes=NULL_TELEMETRY,
        spans=NULL_SPANS,
    ) -> None:
        super().__init__("pac")
        self.config = config if config is not None else PACConfig()
        if protocol is None:
            protocol = HMC2_FINE if self.config.fine_grain else HMC2
        self.protocol = protocol
        self.aggregator = PagedRequestAggregator(
            protocol,
            n_streams=self.config.n_streams,
            timeout_cycles=self.config.timeout_cycles,
            probes=probes.scope("stage1"),
        )
        self.network = CoalescingNetwork(protocol, probes=probes)
        maq_probes = probes.scope("maq")
        self.maq = MemoryAccessQueue(self.config.maq_entries, probes=maq_probes)
        self.mshrs = AdaptiveMSHRFile(
            self.config.n_mshrs, name="pac.amshr", probes=probes.scope("mshr")
        )
        # Peeked before each advance() call: a no-release advance has no
        # side effects, and most events have nothing due.
        self._mshr_heap = self.mshrs._release_heap
        #: Network controller state: disabled while idle (Section 3.2).
        self.network_enabled = not self.config.idle_bypass
        self._last_sample = 0
        # Controller-level probes (the `repro trace` bypass-rate series
        # joins direct_requests with the network's bypass counters).
        ctrl = probes.scope("controller")
        self._probes_on = probes.enabled
        #: Span tracer: stage boundaries are stamped as sampled requests
        #: cross admission, stage-1 flush, network exit, MAQ pop, MSHR
        #: merge release, and device completion.
        self._spans = spans
        self._spans_on = spans.enabled
        self._t_direct = ctrl.counter("direct_requests")
        self._t_enables = ctrl.counter("network_enables")
        self._t_disables = ctrl.counter("network_disables")
        self._t_entry_wait = ctrl.gauge("entry_wait")
        self._t_maq_occupancy = maq_probes.gauge("occupancy")
        # Pre-resolved stat handles for the per-request hot path.
        stats = self.stats
        self._c_atomics = stats.counter("atomics")
        self._c_fences = stats.counter("fences")
        self._c_net_enables = stats.counter("network_enables")
        self._c_net_disables = stats.counter("network_disables")
        self._c_pipeline_stalls = stats.counter("pipeline_stall_cycles")
        self._c_mshr_cam = stats.counter("mshr_cam_comparisons")
        self._c_mshr_merges = stats.counter("mshr_packet_merges")
        self._c_direct = stats.counter("direct_requests")
        self._c_direct_cam = stats.counter("direct_cam_comparisons")
        self._acc_latency = stats.accumulator("request_latency")
        self._h_occupancy = self.aggregator.stats.histogram(
            "occupancy_samples"
        )

    # ------------------------------------------------------------------ #
    # main loop

    def process(
        self, raw: Iterable[MemoryRequest], memory: MemoryDevice
    ) -> CoalesceOutcome:
        out = CoalesceOutcome()
        self._out = out
        self._memory = memory
        #: Cycle at which stage 1 can next accept a request: one admission
        #: per cycle, pushed back whenever the MAQ backpressures the
        #: pipeline. A stalled pipeline makes the backlog *bunch up*, so
        #: queued requests land in shared aggregation windows — the
        #: behaviour that lets PAC mine a congested miss queue.
        self._entry_clock = 0
        self._arrivals = {}
        latency_add = self._acc_latency.add

        spans = self._spans
        spans_on = self._spans_on
        probes_on = self._probes_on
        aggregator_insert = self.aggregator.insert
        flush_stream = self._flush_stream
        advance = self._advance
        atomic_op = MemOp.ATOMIC
        fence_op = MemOp.FENCE

        for req in raw:
            out.n_raw += 1
            now = max(req.cycle, self._entry_clock)
            # Service accounting measures from *entry* into the miss
            # path — the moment an in-order core would have issued the
            # miss — so the open-loop backlog does not inflate it.
            self._arrivals[req.req_id] = now
            out.stall_cycles += now - req.cycle
            if probes_on:
                self._t_entry_wait.observe(now, now - req.cycle)
            if spans_on:
                # index = raw-stream ordinal: deterministic across
                # serial/parallel runs, unlike the process-global req_id.
                spans.admit(out.n_raw - 1, req, now)
            self._entry_clock = now + 1
            advance(now)

            if req.op == atomic_op:
                # Atomics go straight to the memory controller,
                # uncoalesced, not even via the MSHRs (Section 3.3.1).
                packet = CoalescedRequest(
                    addr=req.line_addr, size=max(req.size, 16), op=MemOp.STORE,
                    constituents=(req.req_id,), issue_cycle=now,
                    source="atomic",
                )
                completion = memory.submit(packet, now)
                out.issued.append(packet)
                out.n_issued += 1
                out.last_completion_cycle = max(
                    out.last_completion_cycle, completion
                )
                out.account_service(now, completion)
                if spans_on:
                    spans.mark(req.req_id, "device", completion)
                self._c_atomics.value += 1
                continue

            if req.op == fence_op:
                for stream in self.aggregator.fence(now):
                    flush_stream(stream, now)
                self._c_fences.value += 1
                continue

            if not self.network_enabled:
                # Idle bypass: straight into the MSHRs with ~1 cycle of
                # latency; the network stays off until the MSHRs fill.
                if self.mshrs.full:
                    self.network_enabled = True
                    self._c_net_enables.value += 1
                    if probes_on:
                        self._t_enables.add(now)
                else:
                    self._direct_to_mshr(req, now)
                    latency_add(1.0)
                    continue

            flushed = aggregator_insert(req, now)
            if flushed:
                for stream in flushed:
                    flush_stream(stream, now)

        # End of stream: drain everything that is still buffered; each
        # remaining stream flushes at its own timeout deadline.
        for stream in sorted(
            self.aggregator.drain(),
            key=lambda s: s.deadline(self.config.timeout_cycles),
        ):
            self._flush_stream(
                stream, stream.deadline(self.config.timeout_cycles)
            )
        self._drain_maq(until_empty=True)

        # Figure 7 accounting: the comparisons of the *coalescing
        # procedure* — the stage-1 page-granular CAM (plus the direct
        # path's CAM, which serves as its aggregation check). The
        # packet-dispatch MSHR CAM is common to every design and is
        # tracked separately in ``stats['mshr_cam_comparisons']``.
        out.comparisons = self.aggregator.stats.count(
            "comparisons"
        ) + self.stats.count("direct_cam_comparisons")
        return out

    # ------------------------------------------------------------------ #
    # internals

    def _advance(self, now: int) -> None:
        """Process all timeout flushes due at or before ``now`` and drain
        the MAQ into the MSHRs; also take occupancy samples."""
        due = self.aggregator.expire(now)
        if due:
            timeout = self.config.timeout_cycles
            # expire() pops its heap in (deadline, alloc) order, so the
            # due list arrives already deadline-sorted.
            deadlines = [s.deadline(timeout) for s in due]
            self._sample_windows(now, deadlines)
            for stream in due:
                self._flush_stream(stream, stream.deadline(timeout))
        else:
            self._sample_windows(now, ())
        self._drain_maq(now=now)
        # Apply any memory responses due by now even when the MAQ is
        # empty — the controller's disable condition reads MSHR occupancy.
        heap = self._mshr_heap
        if heap and heap[0][0] <= now:
            self.mshrs.advance(now)
        self._maybe_disable(now)

    def _sample_windows(self, now: int, expired_deadlines) -> None:
        """Record the per-16-cycle occupancy samples elapsed up to
        ``now`` (Figure 11b). Occupancy is piecewise constant: the
        just-expired streams were still resident until their deadlines,
        so windows before a deadline see them. Windows past the last
        deadline all sample the same surviving occupancy and are recorded
        in one shot — long idle gaps stay O(1).
        """
        if self._last_sample + OCCUPANCY_SAMPLE_CYCLES > now:
            return
        hist = self._h_occupancy
        base = self.aggregator.occupancy  # survivors (already expired out)
        last_deadline = expired_deadlines[-1] if expired_deadlines else None
        while (
            last_deadline is not None
            and self._last_sample + OCCUPANCY_SAMPLE_CYCLES
            <= min(now, last_deadline)
        ):
            window_start = self._last_sample
            self._last_sample += OCCUPANCY_SAMPLE_CYCLES
            # A stream counts for a window if it was still resident when
            # the window opened.
            still_resident = sum(
                1 for d in expired_deadlines if d > window_start
            )
            hist.add(base + still_resident)
        remaining = (now - self._last_sample) // OCCUPANCY_SAMPLE_CYCLES
        if remaining > 0:
            hist.add(base, int(remaining))
            self._last_sample += remaining * OCCUPANCY_SAMPLE_CYCLES

    def _maybe_disable(self, now: int) -> None:
        if (
            self.config.idle_bypass
            and self.network_enabled
            and self.maq.empty
            and self.mshrs.has_free
            and self.aggregator.occupancy == 0
        ):
            self.network_enabled = False
            self._c_net_disables.value += 1
            if self._probes_on:
                self._t_disables.add(now)

    def _flush_stream(self, stream, flush_cycle: int) -> None:
        """Send a stage-1 stream through the network and into the MAQ."""
        # Stage-1 residency: the paper reports the overall PAC latency as
        # timeout-dominated; we record the stream's aggregation residency
        # per request it carried. One add() per request (not a batched
        # moment update) keeps the accumulator bit-identical.
        latency_add = self._acc_latency.add
        sample = float(max(1, flush_cycle - stream.alloc_cycle))
        for _ in range(stream.n_requests):
            latency_add(sample)
        if self._spans_on:
            # Stage-1 residency ends at the flush; the grain lists repeat
            # multi-grain req_ids, which mark_many de-duplicates.
            for rids in stream.grain_requests.values():
                self._spans.mark_many(rids, "stage1", flush_cycle)
        packets = self.network.flush_stream(stream, flush_cycle)
        for packet in packets:
            if self._spans_on:
                self._spans.mark_many(
                    packet.constituents, "network", packet.issue_cycle
                )
            self._enqueue_packet(packet)

    def _enqueue_packet(self, packet: CoalescedRequest) -> None:
        ready = packet.issue_cycle
        if not self.maq.push(packet, ready):
            # MAQ full: the pipeline stalls and the cache blocks until the
            # head drains (Section 3.2). Force one drain; stage 1 cannot
            # admit new requests until then (backpressure).
            waited = self._drain_one(force=True)
            self._entry_clock = max(self._entry_clock, waited)
            self._c_pipeline_stalls.value += max(0, waited - ready)
            if not self.maq.push(packet, max(ready, waited)):
                raise AssertionError("MAQ still full after forced drain")

    def _account_packet(self, packet, completion: int) -> None:
        """Exact service accounting: every raw request covered by this
        packet is satisfied when the packet's response returns."""
        arrivals = self._arrivals
        account = self._out.account_service
        for rid in packet.constituents:
            arrival = arrivals.pop(rid, None)
            if arrival is not None:
                account(arrival, completion)

    def _complete_merge(
        self, packet: CoalescedRequest, merged, cycle: int,
        from_maq: bool = True,
    ) -> None:
        """Shared tail of every packet-merge site: service accounting
        against the owning entry's release, span stamps, merge counter.

        ``from_maq`` distinguishes the MAQ drain sites (which also pop
        the MAQ and stamp the ``maq`` span stage) from the direct path.
        """
        if from_maq:
            self.maq.pop()
            if self._probes_on:
                self._t_maq_occupancy.observe(cycle, len(self.maq))
        self._out.n_merged += packet.n_raw
        if merged.release_cycle is not None:
            self._account_packet(packet, merged.release_cycle)
            if self._spans_on:
                if from_maq:
                    self._spans.mark_many(packet.constituents, "maq", cycle)
                self._spans.mark_many(
                    packet.constituents, "mshr", merged.release_cycle
                )
        self._c_mshr_merges.value += 1

    def _issue_packet(self, packet: CoalescedRequest, t: int) -> int:
        """Allocate an MSHR for ``packet``, submit it to the device, and
        do the issue-side accounting; returns the completion cycle."""
        out = self._out
        slot, _ = self.mshrs.allocate_packet(packet, t)
        completion = self._memory.submit(packet, t)
        self.mshrs.schedule_release(slot, completion)
        out.issued.append(packet)
        out.n_issued += 1
        if completion > out.last_completion_cycle:
            out.last_completion_cycle = completion
        self._account_packet(packet, completion)
        if self._spans_on:
            self._spans.mark_many(packet.constituents, "device", completion)
        return completion

    def _drain_maq(self, now: Optional[int] = None, until_empty: bool = False) -> None:
        """Pop MAQ entries whose ready time has come and hand them to the
        adaptive MSHRs (merge or allocate+dispatch). Entries whose turn
        has come but that find the MSHRs full simply wait in the MAQ —
        that is the MAQ's purpose (Section 3.1.2)."""
        while not self.maq.empty:
            head_ready = self.maq.head_ready_cycle()
            if not until_empty and now is not None and head_ready > now:
                break
            if self._drain_one(now=now, force=until_empty) is None:
                break

    def _drain_one(
        self, now: Optional[int] = None, force: bool = False
    ) -> Optional[int]:
        """Pop the MAQ head into the MSHRs; returns the cycle at which the
        pop happened (>= the packet's ready cycle), or None when the
        MSHRs stay full through ``now`` and ``force`` is False (the
        packet waits in the MAQ)."""
        packet, ready = self.maq.peek()
        heap = self._mshr_heap
        if heap and heap[0][0] <= ready:
            self.mshrs.advance(ready)

        # MAQ->MSHR CAM comparison (contiguity by PPN, Section 3.2) —
        # common to all designs, excluded from the Figure 7 count.
        self._c_mshr_cam.value += self.mshrs.occupancy

        merged = self.mshrs.try_merge_packet(packet)
        if merged is not None:
            self._complete_merge(packet, merged, ready)
            return ready

        t = ready
        if self.mshrs.full:
            # Apply any releases that happened between the packet's ready
            # time and the present; the pop occurs the moment a slot
            # freed, not at `now`.
            horizon = ready if now is None else max(ready, now)
            released = self.mshrs.advance(horizon)
            if released:
                freed_at = min(
                    e.release_cycle for e in released
                    if e.release_cycle is not None
                )
                t = max(ready, freed_at)
            elif not force:
                return None
            else:
                release = self.mshrs.next_release_cycle()
                assert release is not None, (
                    "full adaptive MSHRs with no releases"
                )
                t = max(t, release)
                self.mshrs.advance(t)
            merged = self.mshrs.try_merge_packet(packet)
            if merged is not None:
                self._complete_merge(packet, merged, t)
                return t

        self.maq.pop()
        if self._probes_on:
            self._t_maq_occupancy.observe(t, len(self.maq))
        if self._spans_on:
            self._spans.mark_many(packet.constituents, "maq", t)
        self._issue_packet(packet, t)
        return t

    def _direct_to_mshr(self, req: MemoryRequest, now: int) -> None:
        """Network-disabled fast path: raw request straight to the MSHRs."""
        heap = self._mshr_heap
        if heap and heap[0][0] <= now:
            self.mshrs.advance(now)
        self._c_direct.value += 1
        if self._probes_on:
            self._t_direct.add(now)
        self._c_direct_cam.value += self.mshrs.occupancy
        grain = self.protocol.grain_bytes
        base = req.addr - (req.addr % grain)
        packet = CoalescedRequest(
            addr=base,
            size=grain,
            op=MemOp.STORE if req.op == MemOp.STORE else MemOp.LOAD,
            constituents=(req.req_id,),
            issue_cycle=now,
            source="pac-direct",
        )
        merged = self.mshrs.try_merge_packet(packet)
        if merged is not None:
            self._complete_merge(packet, merged, now, from_maq=False)
            return
        # The caller guarantees a free MSHR (it flips to enabled when
        # full), so allocation cannot fail here.
        self._issue_packet(packet, now)

    # ------------------------------------------------------------------ #
    # derived metrics

    @property
    def bypass_fraction(self) -> float:
        """Fraction of aggregated raw requests that skipped stages 2–3 via
        the C-bit bypass (Figure 12c)."""
        bypassed = self.network.stats.count("bypassed_requests")
        coalesced = self.network.stats.count("coalesced_requests")
        total = bypassed + coalesced
        return bypassed / total if total else 0.0

    @property
    def mean_active_streams(self) -> float:
        """Average occupied coalescing streams over non-idle samples
        (Figure 11c)."""
        hist = self.aggregator.stats.histogram("occupancy_samples")
        busy = {k: v for k, v in hist.bins.items() if k > 0}
        total = sum(busy.values())
        if not total:
            return 0.0
        return sum(k * v for k, v in busy.items()) / total

    @property
    def mean_request_latency(self) -> float:
        return self.stats.accumulator("request_latency").mean

    @property
    def mean_maq_fill_cycles(self) -> float:
        return self.maq.mean_fill_cycles

    @property
    def mean_stage2_cycles(self) -> float:
        return self.network.decoder.stats.accumulator("stage2_cycles").mean

    @property
    def mean_stage3_cycles(self) -> float:
        return self.network.assembler.stats.accumulator("stage3_cycles").mean
