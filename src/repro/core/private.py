"""Private per-core coalescers — the design PAC's sharing argument rejects.

Section 3.1: "a memory coalescer shared by multiple cores, as opposed to
a private coalescer for each core, is desirable to further exploit the
potential spatial locality from multiple processes and threads."

:class:`PrivateCoalescerArray` makes that argument testable: one
independent PAC instance per core, each with a proportional share of the
coalescing streams and MSHRs, no cross-core merging. The
``shared_vs_private`` ablation bench runs both designs on the same
traces.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.common.types import MemoryRequest
from repro.config import PACConfig
from repro.core.pac import PagedAdaptiveCoalescer
from repro.core.protocols import MemoryProtocol
from repro.mshr.dmc import Coalescer, CoalesceOutcome, MemoryDevice


class PrivateCoalescerArray(Coalescer):
    """N per-core PACs over one shared memory device."""

    def __init__(
        self,
        n_cores: int = 8,
        config: Optional[PACConfig] = None,
        protocol: Optional[MemoryProtocol] = None,
    ) -> None:
        super().__init__("private-pac")
        if n_cores <= 0:
            raise ValueError("need at least one core")
        base = config if config is not None else PACConfig()
        # Equal-hardware comparison: split the shared design's streams,
        # MAQ entries and MSHRs across the cores.
        per_core = PACConfig(
            n_streams=max(1, base.n_streams // n_cores),
            timeout_cycles=base.timeout_cycles,
            maq_entries=max(1, base.maq_entries // n_cores),
            n_mshrs=max(1, base.n_mshrs // n_cores),
            idle_bypass=base.idle_bypass,
            fine_grain=base.fine_grain,
        )
        self.n_cores = n_cores
        self.coalescers: List[PagedAdaptiveCoalescer] = [
            PagedAdaptiveCoalescer(per_core, protocol=protocol)
            for _ in range(n_cores)
        ]

    def process(
        self, raw: Iterable[MemoryRequest], memory: MemoryDevice
    ) -> CoalesceOutcome:
        # Partition the stream by core, run each private coalescer, and
        # merge the outcomes. Each partition preserves its cycle order;
        # the shared device sees submissions in per-coalescer order,
        # which is the right approximation for independent pipelines.
        by_core: List[List[MemoryRequest]] = [[] for _ in range(self.n_cores)]
        total = 0
        for req in raw:
            by_core[req.core_id % self.n_cores].append(req)
            total += 1
        merged = CoalesceOutcome()
        merged.n_raw = total
        for core, coalescer in enumerate(self.coalescers):
            if not by_core[core]:
                continue
            out = coalescer.process(by_core[core], memory)
            merged.n_issued += out.n_issued
            merged.n_merged += out.n_merged
            merged.issued.extend(out.issued)
            merged.stall_cycles += out.stall_cycles
            merged.comparisons += out.comparisons
            merged.last_completion_cycle = max(
                merged.last_completion_cycle, out.last_completion_cycle
            )
        return merged

    @property
    def mean_active_streams(self) -> float:
        values = [c.mean_active_streams for c in self.coalescers]
        busy = [v for v in values if v > 0]
        return sum(busy) / len(busy) if busy else 0.0
