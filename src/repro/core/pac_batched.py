"""Batched coalescer kernel — the array-backed PAC execution path.

:class:`BatchedPagedAdaptiveCoalescer` is a drop-in replacement for
:class:`repro.core.pac.PagedAdaptiveCoalescer` that produces **bit-
identical** results (same :class:`~repro.mshr.dmc.CoalesceOutcome`, same
issued packets, same stats registries, same device interaction sequence)
while replacing the reference path's per-request object churn with flat
state:

* raw requests are pre-partitioned into **quiescent windows** — the
  fence-delimited segments of the stream (:func:`partition_windows`). A
  fence drains stage 1 completely, so no request after a fence can
  aggregate with one before it: each window's stage-1 coalescing
  decisions depend only on requests inside the window, which is the
  invariant that makes the batched sweep sound. Cross-window state (MSHR
  slots, MAQ backlog, device timing) persists and is advanced in order.
* the aggregator's coalescing table becomes a deque of plain list
  records ``[tag, deadline, ppn, op, alloc_cycle, block_map,
  grain_requests, n_requests]`` plus a tag dict. Admission times are
  strictly increasing, so deadlines are monotone in allocation order and
  the deque **is** the deadline heap: timeout expiry pops from the head,
  the force-flush victim is the head, and the end-of-run drain is the
  deque in order (the reference's stable sort by deadline is the
  identity on an already-deadline-ordered list).
* the MAQ runs on a preallocated ring — the structure
  :class:`repro.common.ringbuf.RingBuffer` implements and the property
  suite pins against :class:`repro.common.fifo.BoundedFIFO` — inlined
  into kernel locals (slot array + head/count cursors), so push/pop are
  index stores; fill-episode accounting is reproduced inline and the
  FIFO's occupancy counters are merged back at the end.
* stages 2–3 (block-map decode + packet assembly) are inlined over the
  flat records: same chunk walk, same table lookups, same per-packet
  cycle arithmetic — packets enqueue as they assemble, which is
  equivalent because assembly never reads MAQ/MSHR state.
* per-request counters accumulate in local integers and merge into the
  real :class:`~repro.common.stats.StatsRegistry` objects once per run.
  Counter sums are order-free; latency/stage accumulators carry
  integral-float cycle samples below 2**53, for which addition is
  associative-exact, so deferred accumulation is bit-identical.

The engine dispatch in :class:`repro.engine.system.System` selects this
class when ``engine`` resolves to ``"batched"``; telemetry probes and
span tracers observe intermediate per-cycle state that the batched sweep
deliberately skips, so construction refuses enabled probes/spans (the
``auto`` engine demotes to the reference path instead — see
ARCHITECTURE.md, "Batched coalescer kernel").
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from typing import Iterable, List, Optional

from repro.common.types import (
    CACHE_LINE_BYTES,
    MemOp,
    MemoryRequest,
    PAGE_BYTES,
    new_packet,
)
from repro.config import PACConfig
from repro.core.pac import OCCUPANCY_SAMPLE_CYCLES, PagedAdaptiveCoalescer
from repro.core.protocols import MemoryProtocol
from repro.mshr.dmc import CoalesceOutcome, MemoryDevice
from repro.mshr.entry import MAX_SPAN_BLOCKS
from repro.telemetry import NULL_SPANS, NULL_TELEMETRY

# Stream-record slots (a plain list is ~3x cheaper than a slotted
# dataclass to allocate, and these are born/die once per page stream).
_TAG, _DEADLINE, _PPN, _OP, _ALLOC, _BMAP, _GREQ, _NREQ = range(8)


def partition_windows(requests) -> List[list]:
    """Split a raw request stream into its quiescent windows.

    A window is a maximal fence-free prefix: every segment ends with the
    FENCE that closes it (the fence belongs to the window it drains),
    except possibly the last. Invariants, property-tested in
    ``tests/core/test_window_property.py``:

    * concatenating the windows reproduces the input exactly;
    * no window contains a FENCE anywhere but its last position;
    * stage-1 aggregation state is empty at every window boundary, so
      per-window stage-1 decisions are independent.
    """
    fence = MemOp.FENCE
    windows: List[list] = []
    current: list = []
    append = current.append
    for req in requests:
        append(req)
        if req.op is fence:
            windows.append(current)
            current = []
            append = current.append
    if current:
        windows.append(current)
    return windows


class BatchedPagedAdaptiveCoalescer(PagedAdaptiveCoalescer):
    """Array-backed PAC kernel; bit-identical to the reference engine."""

    def __init__(
        self,
        config: Optional[PACConfig] = None,
        protocol: Optional[MemoryProtocol] = None,
        probes=NULL_TELEMETRY,
        spans=NULL_SPANS,
    ) -> None:
        if getattr(probes, "enabled", False):
            raise ValueError(
                "the batched engine skips the per-cycle state telemetry "
                "probes observe — use engine='reference' for probe runs"
            )
        if getattr(spans, "enabled", False):
            raise ValueError(
                "the batched engine does not stamp span stage "
                "boundaries — use engine='reference' for span runs"
            )
        super().__init__(config, protocol=protocol, probes=probes, spans=spans)

    def process(
        self, raw: Iterable[MemoryRequest], memory: MemoryDevice
    ) -> CoalesceOutcome:
        out = CoalesceOutcome()
        self._out = out
        self._memory = memory
        requests = raw if isinstance(raw, list) else list(raw)
        windows = partition_windows(requests)

        # ---- flat state ------------------------------------------------
        arrivals = self._arrivals = {}
        arrivals_pop = arrivals.pop
        entry_clock = 0
        #: Allocation-ordered (== deadline-ordered) stage-1 records.
        agg: deque = deque()
        by_tag: dict = {}
        # The MAQ ring (the structure RingBuffer implements and the
        # property suite pins against BoundedFIFO), inlined into kernel
        # locals: a preallocated slot array plus head/count cursors, so
        # push/pop are index stores instead of method calls.
        maq_cap = self.config.maq_entries
        # Parallel slot arrays (packet / ready-cycle) instead of one
        # array of tuples: enqueue skips a tuple allocation per packet
        # and head peeks are single index loads.
        maq_pkt: list = [None] * maq_cap
        maq_rdy: list = [0] * maq_cap
        maq_head = 0
        maq_count = 0
        maq_pushed = 0
        maq_peak = 0
        episode_start = None  # MAQ fill episode (Figure 12b)
        maq_stall_until = self._maq_stall_until
        network_enabled = self.network_enabled
        last_sample = self._last_sample
        sample_period = OCCUPANCY_SAMPLE_CYCLES

        # ---- locally accumulated counters ------------------------------
        n_raw = 0
        stall_cycles = 0
        n_issued = 0
        n_merged = 0
        last_completion = out.last_completion_cycle
        svc_cycles = 0
        svc_served = 0
        c_atomics = c_fences = 0
        c_net_enables = c_net_disables = 0
        c_pipe_stalls = 0
        c_cam = 0
        c_merges = 0
        c_direct = c_direct_cam = 0
        lat_direct = 0
        c_comparisons = c_merged = c_forced = c_alloc = c_fence_flush = 0
        c_byp_streams = c_byp_reqs = 0
        c_coal_streams = c_coal_reqs = 0
        dec_streams = dec_sequences = 0
        asm_sequences = asm_packets = 0
        c_full_stalls = 0

        # ---- bound shared structures ------------------------------------
        config = self.config
        timeout = config.timeout_cycles
        n_streams = config.n_streams
        idle_bypass = self._idle_bypass
        n_mshrs = self._n_mshrs
        hpush = heappush
        hpop = heappop
        # Flat MSHR file: slot -> [base_block, span_blocks, op,
        # release_cycle] records, a (release, slot) heap, and the
        # covered-block CAM index — the same three structures
        # AdaptiveMSHRFile keeps, minus the entry/subentry objects
        # (subentries are write-only bookkeeping within a run).
        mshr_heap: list = []
        mshr_slots: dict = {}
        mshr_cover: dict = {}
        mshr_next_slot = 0
        mshr_allocs = 0
        mshr_merges = 0
        memory_submit = memory.submit
        issued_append = out.issued.append
        proto = self.protocol
        grain_bytes = proto.grain_bytes
        chunk_width = proto.chunk_width
        network = self.network
        # Stage-3 table, memo-direct: patterns are masked to chunk_width
        # so the bounds check in ``lookup`` can never fire, and the
        # ``lookups`` counter is reconciled in the sync block (exactly
        # one lookup per nonzero chunk == dec_sequences).
        table = network.table
        table_memo = table._table
        table_compute = table._compute
        chunk_mask = (1 << chunk_width) - 1
        size_memo = network.assembler._packet_bytes_memo
        packet_bytes = proto.packet_bytes
        # Deferred accumulators as [count, total, min, max, sumsq]
        # lists; cycle-valued samples are integral floats below 2**53,
        # so the end-of-run merge is bit-identical to per-sample adds.
        inf = float("inf")
        acc_s2 = [0, 0, inf, -inf, 0]
        acc_s3 = [0, 0, inf, -inf, 0]
        acc_pipe = [0, 0, inf, -inf, 0]
        acc_fill = [0, 0, inf, -inf, 0]
        acc_lat = [0, 0, inf, -inf, 0]
        # Insert-time occupancy histogram as a flat list (occupancy is
        # bounded by n_streams); merged into the aggregator's dict bins
        # at the end — pure counter sums, order-free.
        occ_ins_counts = [0] * (n_streams + 1)
        # Sampled-occupancy histogram, also bounded by n_streams.
        occ_samp_counts = [0] * (n_streams + 1)
        load_op = MemOp.LOAD
        store_op = MemOp.STORE
        atomic_op = MemOp.ATOMIC
        fence_op = MemOp.FENCE
        LINE = CACHE_LINE_BYTES
        PAGE = PAGE_BYTES
        STORE_BIT = 1 << 52

        # ---- closures (transliterated reference internals) --------------

        def account(constituents, completion):
            # PagedAdaptiveCoalescer._account_packet
            nonlocal svc_cycles, svc_served
            pop = arrivals.pop
            served = 0
            cycles = 0
            for rid in constituents:
                arrival = pop(rid, None)
                if arrival is not None:
                    if completion > arrival:
                        cycles += completion - arrival
                    served += 1
            if served:
                svc_cycles += cycles
                svc_served += served

        def mshr_advance(now_):
            # AdaptiveMSHRFile.advance: apply releases due by now_.
            released = None
            while mshr_heap and mshr_heap[0][0] <= now_:
                slot = hpop(mshr_heap)[1]
                entry = mshr_slots.pop(slot, None)
                if entry is not None:
                    if released is None:
                        released = [entry]
                    else:
                        released.append(entry)
                    b0 = entry[0]
                    span = entry[1]
                    if span == 1:
                        bucket = mshr_cover[b0]
                        if len(bucket) == 1:
                            del mshr_cover[b0]
                        else:
                            bucket.remove(slot)
                    else:
                        for b in range(b0, b0 + span):
                            bucket = mshr_cover[b]
                            if len(bucket) == 1:
                                del mshr_cover[b]
                            else:
                                bucket.remove(slot)
            return released

        def mshr_next_release():
            # AdaptiveMSHRFile.next_release_cycle
            while mshr_heap:
                cycle_, slot = mshr_heap[0]
                if slot in mshr_slots:
                    return cycle_
                hpop(mshr_heap)
            return None

        def mshr_try_merge(packet, bucket):
            # AdaptiveMSHRFile.try_merge_packet: find a live same-op
            # entry whose span covers every block of the packet. The
            # caller already looked up the first-block cover bucket (so
            # the common miss costs no call); a bucket hit guarantees
            # the first block is covered, leaving only the last block's
            # range check.
            nonlocal mshr_merges
            for slot in bucket:
                entry = mshr_slots[slot]
                if entry[2] == packet.op:
                    break
            else:
                return None
            first_block = packet.addr // LINE
            if first_block - (-packet.size // LINE) - 1 >= entry[0] + entry[1]:
                return None
            mshr_merges += 1
            return entry

        def issue(packet, t):
            # PagedAdaptiveCoalescer._issue_packet with the MSHR
            # allocation (AdaptiveMSHRFile.allocate_packet) and the
            # service accounting (_account_packet) inlined.
            nonlocal n_issued, last_completion, mshr_next_slot, mshr_allocs
            nonlocal svc_cycles, svc_served
            addr = packet.addr
            b0 = addr // LINE
            span = (addr + packet.size - 1) // LINE - b0 + 1
            if span > MAX_SPAN_BLOCKS:
                raise ValueError(
                    f"entry span is 1..{MAX_SPAN_BLOCKS} blocks"
                )
            slot = mshr_next_slot
            mshr_next_slot += 1
            entry = [b0, span, packet.op, None]
            mshr_slots[slot] = entry
            if span == 1:
                bucket = mshr_cover.get(b0)
                if bucket is None:
                    mshr_cover[b0] = [slot]
                else:
                    bucket.append(slot)
            else:
                for b in range(b0, b0 + span):
                    bucket = mshr_cover.get(b)
                    if bucket is None:
                        mshr_cover[b] = [slot]
                    else:
                        bucket.append(slot)
            mshr_allocs += 1
            completion = memory_submit(packet, t)
            entry[3] = completion
            hpush(mshr_heap, (completion, slot))
            issued_append(packet)
            n_issued += 1
            if completion > last_completion:
                last_completion = completion
            cons = packet.constituents
            if len(cons) == 1:
                arrival = arrivals_pop(cons[0], None)
                if arrival is not None:
                    if completion > arrival:
                        svc_cycles += completion - arrival
                    svc_served += 1
            else:
                served = 0
                cycles = 0
                for rid in cons:
                    arrival = arrivals_pop(rid, None)
                    if arrival is not None:
                        if completion > arrival:
                            cycles += completion - arrival
                        served += 1
                if served:
                    svc_cycles += cycles
                    svc_served += served

        def complete_merge(packet, merged, from_maq):
            # PagedAdaptiveCoalescer._complete_merge
            nonlocal n_merged, c_merges, maq_head, maq_count
            if from_maq:
                maq_pkt[maq_head] = None
                maq_head = (maq_head + 1) % maq_cap
                maq_count -= 1
            n_merged += packet.n_raw
            release = merged[3]
            if release is not None:
                account(packet.constituents, release)
            c_merges += 1

        def drain_maq(now_, until_empty):
            # PagedAdaptiveCoalescer._drain_maq with _drain_one's
            # common case (head ready, MSHRs not full, no merge hit)
            # inlined: pop + issue without the per-packet call chain.
            nonlocal maq_stall_until, c_cam, maq_head, maq_count
            while maq_count:
                ready = maq_rdy[maq_head]
                if not until_empty and now_ is not None and ready > now_:
                    break
                packet = maq_pkt[maq_head]
                if mshr_heap and mshr_heap[0][0] <= ready:
                    mshr_advance(ready)
                c_cam += len(mshr_slots)
                bucket = mshr_cover.get(packet.addr // LINE)
                merged = mshr_try_merge(packet, bucket) if bucket else None
                if merged is not None:
                    maq_stall_until = 0
                    complete_merge(packet, merged, True)
                    continue
                if len(mshr_slots) >= n_mshrs:
                    # Full file: same release-wait dance as _drain_one.
                    t = ready
                    horizon = ready if now_ is None or now_ < ready else now_
                    released = (
                        mshr_advance(horizon)
                        if mshr_heap and mshr_heap[0][0] <= horizon
                        else None
                    )
                    if released:
                        freed_at = min(
                            e[3] for e in released if e[3] is not None
                        )
                        if freed_at > t:
                            t = freed_at
                    elif not until_empty:
                        release = mshr_next_release()
                        maq_stall_until = (
                            release if release is not None else 0
                        )
                        break
                    else:
                        release = mshr_next_release()
                        assert release is not None, (
                            "full adaptive MSHRs with no releases"
                        )
                        if release > t:
                            t = release
                        mshr_advance(t)
                    bucket = mshr_cover.get(packet.addr // LINE)
                    merged = (
                        mshr_try_merge(packet, bucket) if bucket else None
                    )
                    if merged is not None:
                        maq_stall_until = 0
                        complete_merge(packet, merged, True)
                        continue
                    maq_stall_until = 0
                    maq_pkt[maq_head] = None
                    maq_head = (maq_head + 1) % maq_cap
                    maq_count -= 1
                    issue(packet, t)
                    continue
                maq_stall_until = 0
                maq_pkt[maq_head] = None
                maq_head = (maq_head + 1) % maq_cap
                maq_count -= 1
                issue(packet, ready)

        def enqueue(packet):
            # PagedAdaptiveCoalescer._enqueue_packet with the MAQ push
            # (MemoryAccessQueue.push) and the forced head drain
            # (_drain_one(None, force=True)) inlined on the ring slot
            # array — the MAQ runs full through flush bursts, so this
            # is the kernel's hottest path.
            nonlocal entry_clock, c_pipe_stalls, episode_start
            nonlocal maq_head, maq_count, maq_pushed, maq_peak
            nonlocal c_full_stalls, maq_stall_until, c_cam
            ready = packet.issue_cycle
            count = maq_count
            if count >= maq_cap:
                c_full_stalls += 1
                head_pkt = maq_pkt[maq_head]
                head_ready = maq_rdy[maq_head]
                if mshr_heap and mshr_heap[0][0] <= head_ready:
                    mshr_advance(head_ready)
                c_cam += len(mshr_slots)
                bucket = mshr_cover.get(head_pkt.addr // LINE)
                merged = (
                    mshr_try_merge(head_pkt, bucket) if bucket else None
                )
                if merged is not None:
                    maq_stall_until = 0
                    complete_merge(head_pkt, merged, True)
                    waited = head_ready
                else:
                    waited = head_ready
                    if len(mshr_slots) >= n_mshrs:
                        released = (
                            mshr_advance(head_ready)
                            if mshr_heap and mshr_heap[0][0] <= head_ready
                            else None
                        )
                        if released:
                            freed_at = min(
                                e[3] for e in released if e[3] is not None
                            )
                            if freed_at > waited:
                                waited = freed_at
                        else:
                            release = mshr_next_release()
                            assert release is not None, (
                                "full adaptive MSHRs with no releases"
                            )
                            if release > waited:
                                waited = release
                            mshr_advance(waited)
                        bucket = mshr_cover.get(head_pkt.addr // LINE)
                        merged = (
                            mshr_try_merge(head_pkt, bucket)
                            if bucket else None
                        )
                    if merged is not None:
                        maq_stall_until = 0
                        complete_merge(head_pkt, merged, True)
                    else:
                        maq_stall_until = 0
                        maq_pkt[maq_head] = None
                        maq_head = (maq_head + 1) % maq_cap
                        maq_count -= 1
                        issue(head_pkt, waited)
                if waited > entry_clock:
                    entry_clock = waited
                if waited > ready:
                    c_pipe_stalls += waited - ready
                count = maq_count
                if count >= maq_cap:
                    raise AssertionError("MAQ still full after forced drain")
                if waited > ready:
                    ready = waited
            if not count:
                episode_start = ready
            slot = (maq_head + count) % maq_cap
            maq_pkt[slot] = packet
            maq_rdy[slot] = ready
            count += 1
            maq_count = count
            maq_pushed += 1
            if count > maq_peak:
                maq_peak = count
            if count >= maq_cap and episode_start is not None:
                fill = ready - episode_start
                if fill < 0:
                    fill = 0
                acc_fill[0] += 1
                acc_fill[1] += fill
                acc_fill[4] += fill * fill
                if fill < acc_fill[2]:
                    acc_fill[2] = fill
                if fill > acc_fill[3]:
                    acc_fill[3] = fill
                episode_start = None

        def flush(rec, flush_cycle):
            # _flush_stream + CoalescingNetwork.flush_stream + stages 2-3
            # inlined over the flat record.
            nonlocal c_byp_streams, c_byp_reqs, c_coal_streams, c_coal_reqs
            nonlocal dec_streams, dec_sequences, asm_sequences, asm_packets
            nreq = rec[7]
            residency = flush_cycle - rec[4]
            r = float(residency) if residency > 1 else 1.0
            acc_lat[0] += nreq
            acc_lat[1] += r * nreq
            acc_lat[4] += r * r * nreq
            if r < acc_lat[2]:
                acc_lat[2] = r
            if r > acc_lat[3]:
                acc_lat[3] = r
            greq = rec[6]
            op = rec[3]
            page_base = rec[2] * PAGE
            if nreq <= 1:
                # C = 0: single request — bypass stages 2-3.
                c_byp_streams += 1
                c_byp_reqs += nreq
                if len(greq) == 1:
                    first = last = next(iter(greq))
                else:
                    grains = sorted(greq)
                    first = grains[0]
                    last = grains[-1]
                rids = greq[first]
                enqueue(new_packet(
                    page_base + first * grain_bytes,
                    (last - first + 1) * grain_bytes,
                    op,
                    (rids[0],) if len(rids) == 1
                    else tuple(dict.fromkeys(rids)),
                    flush_cycle + 1,  # BYPASS_CYCLES
                    "pac-bypass",
                ))
                return
            c_coal_streams += 1
            c_coal_reqs += nreq
            greq_get = greq.get
            stage3_free = flush_cycle
            ready = flush_cycle + 2  # DECODE_CYCLES; j-th chunk at +j
            n_seq = 0
            # Walk nonzero chunks by mask/shift directly over the block
            # map (same ascending order as bitops.nonzero_chunks, minus
            # the three intermediate lists).
            bmap = rec[5]
            chunk_index = 0
            while bmap:
                pattern = bmap & chunk_mask
                bmap >>= chunk_width
                if not pattern:
                    chunk_index += 1
                    continue
                start = ready if ready > stage3_free else stage3_free
                layout = table_memo.get(pattern)
                if layout is None:
                    layout = table_compute(pattern)
                    table_memo[pattern] = layout
                cycle = start + 1  # LOOKUP_CYCLES
                chunk_base = chunk_index * chunk_width
                for grain_offset, n_grains in layout:
                    cycle += 1  # ASSEMBLE_CYCLES
                    base_g = chunk_base + grain_offset
                    if n_grains == 1:
                        rids = greq_get(base_g, ())
                    else:
                        rids = [
                            rid
                            for g in range(base_g, base_g + n_grains)
                            for rid in greq_get(g, ())
                        ]
                    if len(rids) > 1:
                        cons = tuple(dict.fromkeys(rids))
                    elif rids:
                        cons = (rids[0],)
                    else:
                        raise AssertionError(
                            "coalescing table produced a packet over "
                            "empty grains"
                        )
                    size = size_memo.get(n_grains)
                    if size is None:
                        size = packet_bytes(n_grains)
                        size_memo[n_grains] = size
                    enqueue(new_packet(
                        page_base + base_g * grain_bytes,
                        size, op, cons, cycle, "pac",
                    ))
                    asm_packets += 1
                asm_sequences += 1
                d = cycle - start
                acc_s3[0] += 1
                acc_s3[1] += d
                acc_s3[4] += d * d
                if d < acc_s3[2]:
                    acc_s3[2] = d
                if d > acc_s3[3]:
                    acc_s3[3] = d
                stage3_free = cycle
                ready += 1
                n_seq += 1
                chunk_index += 1
            dec_streams += 1
            dec_sequences += n_seq
            if n_seq:
                d = 2 + n_seq - 1  # DECODE_CYCLES + stores
                acc_s2[0] += 1
                acc_s2[1] += d
                acc_s2[4] += d * d
                if d < acc_s2[2]:
                    acc_s2[2] = d
                if d > acc_s2[3]:
                    acc_s2[3] = d
            d = stage3_free - flush_cycle
            acc_pipe[0] += 1
            acc_pipe[1] += d
            acc_pipe[4] += d * d
            if d < acc_pipe[2]:
                acc_pipe[2] = d
            if d > acc_pipe[3]:
                acc_pipe[3] = d

        def sample_windows(now_, expired_deadlines):
            # PagedAdaptiveCoalescer._sample_windows
            nonlocal last_sample
            if last_sample + sample_period > now_:
                return
            base = len(agg)  # survivors (already expired out)
            if expired_deadlines:
                last_deadline = expired_deadlines[-1]
                limit = now_ if now_ < last_deadline else last_deadline
                while last_sample + sample_period <= limit:
                    window_start = last_sample
                    last_sample += sample_period
                    still = 0
                    for d in expired_deadlines:
                        if d > window_start:
                            still += 1
                    occ_samp_counts[base + still] += 1
            remaining = (now_ - last_sample) // sample_period
            if remaining > 0:
                occ_samp_counts[base] += remaining
                last_sample += remaining * sample_period

        # ---- main sweep --------------------------------------------------
        for window in windows:
            for req in window:
                n_raw += 1
                cycle = req.cycle
                now = entry_clock
                if cycle > now:
                    now = cycle
                arrivals[req.req_id] = now
                stall_cycles += now - cycle
                entry_clock = now + 1

                # -- inlined _advance(now) --
                if agg and agg[0][1] <= now:
                    if last_sample + sample_period <= now:
                        due = []
                        due_append = due.append
                        while agg and agg[0][1] <= now:
                            rec = agg.popleft()
                            del by_tag[rec[0]]
                            due_append(rec)
                        sample_windows(now, [rec[1] for rec in due])
                        for rec in due:
                            flush(rec, rec[1])
                    else:
                        # Sampling not due: flush each expiry as it is
                        # popped. ``flush`` never touches agg/by_tag, so
                        # this is order-identical to collect-then-flush.
                        while agg and agg[0][1] <= now:
                            rec = agg.popleft()
                            del by_tag[rec[0]]
                            flush(rec, rec[1])
                elif last_sample + sample_period <= now:
                    # sample_windows(now, ()) inlined: no expiries, so
                    # every elapsed window saw the current occupancy.
                    remaining = (now - last_sample) // sample_period
                    occ_samp_counts[len(agg)] += remaining
                    last_sample += remaining * sample_period
                if maq_count and maq_rdy[maq_head] <= now:
                    if now < maq_stall_until:
                        # Head ready but MSHRs provably full: replay the
                        # CAM sweep, skip the poll.
                        c_cam += n_mshrs
                    else:
                        drain_maq(now, False)
                if mshr_heap and mshr_heap[0][0] <= now:
                    mshr_advance(now)
                if (
                    idle_bypass
                    and network_enabled
                    and not maq_count
                    and not agg
                    and len(mshr_slots) < n_mshrs
                ):
                    network_enabled = False
                    c_net_disables += 1

                # -- op dispatch --
                op = req.op
                if op is load_op or op is store_op:
                    if not network_enabled:
                        if len(mshr_slots) >= n_mshrs:
                            network_enabled = True
                            c_net_enables += 1
                        else:
                            # _direct_to_mshr: straight into the MSHRs.
                            if mshr_heap and mshr_heap[0][0] <= now:
                                mshr_advance(now)
                            c_direct += 1
                            c_direct_cam += len(mshr_slots)
                            addr = req.addr
                            packet = new_packet(
                                addr - (addr % grain_bytes),
                                grain_bytes,
                                store_op if op is store_op else load_op,
                                (req.req_id,),
                                now,
                                "pac-direct",
                            )
                            bucket = mshr_cover.get(packet.addr // LINE)
                            merged = (
                                mshr_try_merge(packet, bucket)
                                if bucket else None
                            )
                            if merged is not None:
                                complete_merge(packet, merged, False)
                            else:
                                issue(packet, now)
                            lat_direct += 1
                            continue
                    # -- aggregator.insert, inlined --
                    n_active = len(agg)
                    c_comparisons += n_active
                    occ_ins_counts[n_active] += 1
                    addr = req.addr
                    page = addr // PAGE
                    tag = (STORE_BIT | page) if op is store_op else page
                    rec = by_tag.get(tag)
                    forced = None
                    if rec is None:
                        if n_active >= n_streams:
                            forced = agg.popleft()
                            del by_tag[forced[0]]
                            c_forced += 1
                        rec = [
                            tag, now + timeout, page, op, now,
                            0, {}, 0,
                        ]
                        agg.append(rec)
                        by_tag[tag] = rec
                        c_alloc += 1
                    else:
                        c_merged += 1
                    # -- CoalescingStream.add, inlined --
                    offset = addr % PAGE
                    first = offset // grain_bytes
                    last_off = offset + req.size - 1
                    if last_off >= PAGE:
                        last_off = PAGE - 1
                    last = last_off // grain_bytes
                    greq = rec[6]
                    rid = req.req_id
                    if first == last:
                        rec[5] |= 1 << first
                        bucket = greq.get(first)
                        if bucket is None:
                            greq[first] = [rid]
                        else:
                            bucket.append(rid)
                    else:
                        bmap = rec[5]
                        for g in range(first, last + 1):
                            bmap |= 1 << g
                            bucket = greq.get(g)
                            if bucket is None:
                                greq[g] = [rid]
                            else:
                                bucket.append(rid)
                        rec[5] = bmap
                    rec[7] += 1
                    if forced is not None:
                        flush(forced, now)
                elif op is atomic_op:
                    # Atomics bypass PAC entirely (Section 3.3.1).
                    size = req.size
                    packet = new_packet(
                        req.addr - (req.addr % LINE),
                        size if size > 16 else 16,
                        store_op,
                        (req.req_id,),
                        now,
                        "atomic",
                    )
                    completion = memory_submit(packet, now)
                    issued_append(packet)
                    n_issued += 1
                    if completion > last_completion:
                        last_completion = completion
                    if completion > now:
                        svc_cycles += completion - now
                    svc_served += 1
                    c_atomics += 1
                elif op is fence_op:
                    # aggregator.fence: flush everything at `now`.
                    if agg:
                        flushed = list(agg)
                        agg.clear()
                        by_tag.clear()
                        c_fence_flush += len(flushed)
                        for rec in flushed:
                            flush(rec, now)
                    c_fences += 1
                else:
                    raise ValueError(
                        f"non-coalescable op in aggregator: {op}"
                    )

        out.n_raw = n_raw
        out.stall_cycles += stall_cycles

        # End of stream: the deque is deadline-ordered, so draining in
        # order matches the reference's stable sort by deadline.
        if agg:
            for rec in agg:
                flush(rec, rec[1])
            agg.clear()
            by_tag.clear()
        drain_maq(None, True)

        # ---- merge local accumulation into the shared registries --------
        out.n_issued += n_issued
        out.n_merged += n_merged
        if last_completion > out.last_completion_cycle:
            out.last_completion_cycle = last_completion
        out.raw_service_cycles += svc_cycles
        out.raw_serviced += svc_served
        if lat_direct:
            # Direct-path requests each record a 1-cycle residency.
            acc_lat[0] += lat_direct
            acc_lat[1] += 1.0 * lat_direct
            acc_lat[4] += 1.0 * lat_direct
            if 1.0 < acc_lat[2]:
                acc_lat[2] = 1.0
            if 1.0 > acc_lat[3]:
                acc_lat[3] = 1.0
        self._c_atomics.value += c_atomics
        self._c_fences.value += c_fences
        self._c_net_enables.value += c_net_enables
        self._c_net_disables.value += c_net_disables
        self._c_pipeline_stalls.value += c_pipe_stalls
        self._c_mshr_cam.value += c_cam
        self._c_mshr_merges.value += c_merges
        mshrs = self.mshrs
        mshrs._c_allocations.value += mshr_allocs
        mshrs._c_packet_merges.value += mshr_merges
        self._c_direct.value += c_direct
        self._c_direct_cam.value += c_direct_cam
        aggregator = self.aggregator
        occ_ins_bins = aggregator._occ_bins
        for occ, n in enumerate(occ_ins_counts):
            if n:
                occ_ins_bins[occ] = occ_ins_bins.get(occ, 0) + n
        occ_samp_bins = self._h_occupancy.bins
        for occ, n in enumerate(occ_samp_counts):
            if n:
                occ_samp_bins[occ] = occ_samp_bins.get(occ, 0) + n
        aggregator._c_comparisons.value += c_comparisons
        aggregator._c_merged.value += c_merged
        aggregator._c_forced.value += c_forced
        aggregator._c_alloc.value += c_alloc
        aggregator._c_fence.value += c_fence_flush
        network._c_bypassed_streams.value += c_byp_streams
        network._c_bypassed_requests.value += c_byp_reqs
        network._c_coalesced_streams.value += c_coal_streams
        network._c_coalesced_requests.value += c_coal_reqs
        decoder = network.decoder
        decoder._c_streams.value += dec_streams
        decoder._c_sequences.value += dec_sequences
        # Memo-direct stage-3 lookups: one per nonzero chunk, which is
        # exactly what dec_sequences counted.
        table.lookups += dec_sequences
        assembler = network.assembler
        assembler._c_sequences.value += asm_sequences
        assembler._c_packets.value += asm_packets
        for acc, loc in (
            (network.decoder._a_stage2, acc_s2),
            (network.assembler._a_stage3, acc_s3),
            (network._a_pipeline_cycles, acc_pipe),
            (self.maq._a_fill_cycles, acc_fill),
            (self._acc_latency, acc_lat),
        ):
            if loc[0]:
                acc.count += loc[0]
                acc.total += loc[1]
                acc._sumsq += loc[4]
                if loc[2] < acc.min:
                    acc.min = loc[2]
                if loc[3] > acc.max:
                    acc.max = loc[3]
        maq = self.maq
        maq._c_full_stalls.value += c_full_stalls
        maq._episode_start = episode_start
        fifo = maq._fifo
        fifo.total_pushed += maq_pushed
        if maq_peak > fifo.peak_occupancy:
            fifo.peak_occupancy = maq_peak
        self._entry_clock = entry_clock
        self._maq_stall_until = maq_stall_until
        self._last_sample = last_sample
        self.network_enabled = network_enabled

        out.comparisons = aggregator.stats.count(
            "comparisons"
        ) + self.stats.count("direct_cam_comparisons")
        return out
