"""Stage 1 — the paged request aggregator (Section 3.3.1).

Each incoming raw request is compared *simultaneously* against the tags
of all active coalescing streams (hardware comparators; we count one
comparison per active stream for the Figure 7 accounting). A match merges
the request into that stream's block-map; otherwise a new stream is
allocated. Streams flush to stage 2 when their timeout expires, when a
fence arrives, or when all slots are busy and a new page needs one (the
oldest stream is force-flushed).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, List, Optional, Tuple

from repro.common.stats import StatsRegistry
from repro.common.types import PAGE_BYTES, MemOp, MemoryRequest
from repro.core.protocols import MemoryProtocol
from repro.core.stream import CoalescingStream, new_stream
from repro.telemetry import NULL_TELEMETRY


class PagedRequestAggregator:
    """Fixed number of parallel coalescing stream slots."""

    def __init__(
        self,
        protocol: MemoryProtocol,
        n_streams: int = 16,
        timeout_cycles: int = 16,
        probes=NULL_TELEMETRY,
    ) -> None:
        if n_streams <= 0:
            raise ValueError("need at least one coalescing stream")
        if timeout_cycles <= 0:
            raise ValueError("timeout must be positive")
        self.protocol = protocol
        self.n_streams = n_streams
        self.timeout_cycles = timeout_cycles
        self.streams: List[CoalescingStream] = []
        self.stats = StatsRegistry("pra")
        self._probes_on = probes.enabled
        self._t_alloc = probes.counter("allocations")
        self._t_merge = probes.counter("merged_inserts")
        self._t_forced = probes.counter("forced_flushes")
        self._t_occupancy = probes.gauge("occupancy")
        self._c_comparisons = self.stats.counter("comparisons")
        self._c_merged = self.stats.counter("merged_inserts")
        self._c_forced = self.stats.counter("forced_flushes")
        self._c_alloc = self.stats.counter("allocations")
        self._c_fence = self.stats.counter("fence_flushes")
        self._h_occ_at_insert = self.stats.histogram("occupancy_at_insert")
        # Histogram bins are mutated in place, never rebound — safe to
        # bind once for the per-request fast path in insert().
        self._occ_bins = self._h_occ_at_insert.bins
        #: Deadline heap: ``(deadline, seq, stream)`` pushed at stream
        #: allocation (deadlines are fixed at allocation, Section 3.3.1).
        #: Streams removed by a forced flush or a fence leave stale heap
        #: entries, skipped via ``stream.resident`` when they surface.
        #: ``seq`` is the allocation order, which makes deadline ties pop
        #: in the same order as the original stable sort over the
        #: allocation-ordered stream list.
        self._deadline_heap: List[Tuple[int, int, CoalescingStream]] = []
        self._alloc_seq = itertools.count()
        #: Tag -> resident stream. Tags are unique among resident streams
        #: (a matching tag merges instead of allocating), so the parallel
        #: comparator sweep resolves to one dict probe. The comparison
        #: *count* still models the hardware sweep over every slot.
        self._by_tag: Dict[int, CoalescingStream] = {}

    @property
    def occupancy(self) -> int:
        return len(self.streams)

    @property
    def full(self) -> bool:
        return len(self.streams) >= self.n_streams

    def next_deadline(self) -> Optional[int]:
        """Earliest timeout deadline among active streams."""
        heap = self._deadline_heap
        while heap:
            if heap[0][2].resident:
                return heap[0][0]
            heapq.heappop(heap)  # stale (force-flushed or fenced)
        return None

    def expire(self, now: int) -> List[CoalescingStream]:
        """Remove and return every stream whose timeout has passed at
        ``now`` (deadline <= now), oldest deadline first."""
        heap = self._deadline_heap
        if not heap or heap[0][0] > now:
            return []  # nothing can be due yet
        due: List[CoalescingStream] = []
        while heap and heap[0][0] <= now:
            _, _, stream = heapq.heappop(heap)
            if stream.resident:
                stream.resident = False
                self._by_tag.pop(stream.tag, None)
                due.append(stream)
        if due:
            self.streams = [s for s in self.streams if s.resident]
        return due

    def insert(self, req: MemoryRequest, now: int) -> List[CoalescingStream]:
        """Insert a raw request; returns any streams force-flushed to make
        room (empty list in the common case).

        Atomics must not reach the aggregator (they bypass PAC entirely,
        Section 3.3.1) — the caller routes them around.
        """
        op = req.op
        if op is not MemOp.LOAD and op is not MemOp.STORE:
            raise ValueError(f"non-coalescable op in aggregator: {req.op}")
        streams = self.streams
        n_active = len(streams)
        # One parallel comparator sweep across all active streams.
        self._c_comparisons.value += n_active
        occ_bins = self._occ_bins
        occ_bins[n_active] = occ_bins.get(n_active, 0) + 1
        if self._probes_on:
            self._t_occupancy.observe(now, n_active)

        # Inlined MemoryRequest.tag() — one combined comparator key per
        # insert, and insert is the stage-1 per-request hot path.
        tag = ((op is MemOp.STORE) << 52) | (req.addr // PAGE_BYTES)
        stream = self._by_tag.get(tag)
        if stream is not None:
            stream.add(req, now)
            self._c_merged.value += 1
            if self._probes_on:
                self._t_merge.add(now)
            return []

        flushed: List[CoalescingStream] = []
        if n_active >= self.n_streams:
            # All slots busy: force-flush the oldest stream (earliest
            # allocation). Streams append in admission order and `now`
            # is monotone, so the head of the list is the oldest.
            oldest = streams.pop(0)
            oldest.resident = False  # lazy-delete its heap entry
            self._by_tag.pop(oldest.tag, None)
            flushed.append(oldest)
            self._c_forced.value += 1
            if self._probes_on:
                self._t_forced.add(now)
        fresh = new_stream(req, self.protocol, now, tag=tag)
        streams.append(fresh)
        self._by_tag[tag] = fresh
        heapq.heappush(
            self._deadline_heap,
            (now + self.timeout_cycles, next(self._alloc_seq), fresh),
        )
        self._c_alloc.value += 1
        if self._probes_on:
            self._t_alloc.add(now)
        return flushed

    def fence(self, now: int) -> List[CoalescingStream]:
        """A memory fence monopolizes stage 1 and pushes every previous
        request to stage 2 (Section 3.3.1)."""
        flushed = list(self.streams)
        self.streams.clear()
        for stream in flushed:
            stream.resident = False
        self._deadline_heap.clear()
        self._by_tag.clear()
        self._c_fence.value += len(flushed)
        return flushed

    def drain(self) -> List[CoalescingStream]:
        """End-of-run flush of everything still buffered."""
        flushed = list(self.streams)
        self.streams.clear()
        for stream in flushed:
            stream.resident = False
        self._deadline_heap.clear()
        self._by_tag.clear()
        return flushed

    def sample_occupancy(self, now: int) -> None:
        """Record the number of occupied streams (the paper samples every
        16 cycles for Figure 11b/11c)."""
        self.stats.histogram("occupancy_samples").add(len(self.streams))
