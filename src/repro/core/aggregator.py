"""Stage 1 — the paged request aggregator (Section 3.3.1).

Each incoming raw request is compared *simultaneously* against the tags
of all active coalescing streams (hardware comparators; we count one
comparison per active stream for the Figure 7 accounting). A match merges
the request into that stream's block-map; otherwise a new stream is
allocated. Streams flush to stage 2 when their timeout expires, when a
fence arrives, or when all slots are busy and a new page needs one (the
oldest stream is force-flushed).
"""

from __future__ import annotations

from typing import List, Optional

from repro.common.stats import StatsRegistry
from repro.common.types import MemOp, MemoryRequest
from repro.core.protocols import MemoryProtocol
from repro.core.stream import CoalescingStream, new_stream
from repro.telemetry import NULL_TELEMETRY


class PagedRequestAggregator:
    """Fixed number of parallel coalescing stream slots."""

    def __init__(
        self,
        protocol: MemoryProtocol,
        n_streams: int = 16,
        timeout_cycles: int = 16,
        probes=NULL_TELEMETRY,
    ) -> None:
        if n_streams <= 0:
            raise ValueError("need at least one coalescing stream")
        if timeout_cycles <= 0:
            raise ValueError("timeout must be positive")
        self.protocol = protocol
        self.n_streams = n_streams
        self.timeout_cycles = timeout_cycles
        self.streams: List[CoalescingStream] = []
        self.stats = StatsRegistry("pra")
        self._probes_on = probes.enabled
        self._t_alloc = probes.counter("allocations")
        self._t_merge = probes.counter("merged_inserts")
        self._t_forced = probes.counter("forced_flushes")
        self._t_occupancy = probes.gauge("occupancy")
        #: Lower bound on the earliest stream deadline — lets expire()
        #: early-out without scanning (exact after every expire()).
        self._min_deadline: Optional[int] = None

    @property
    def occupancy(self) -> int:
        return len(self.streams)

    @property
    def full(self) -> bool:
        return len(self.streams) >= self.n_streams

    def next_deadline(self) -> Optional[int]:
        """Earliest timeout deadline among active streams."""
        if not self.streams:
            return None
        return min(s.deadline(self.timeout_cycles) for s in self.streams)

    def expire(self, now: int) -> List[CoalescingStream]:
        """Remove and return every stream whose timeout has passed at
        ``now`` (deadline <= now), oldest deadline first."""
        if self._min_deadline is not None and now < self._min_deadline:
            return []  # nothing can be due yet
        due = [s for s in self.streams if s.deadline(self.timeout_cycles) <= now]
        if due:
            due.sort(key=lambda s: s.deadline(self.timeout_cycles))
            self.streams = [
                s for s in self.streams
                if s.deadline(self.timeout_cycles) > now
            ]
        self._min_deadline = self.next_deadline()
        return due

    def insert(self, req: MemoryRequest, now: int) -> List[CoalescingStream]:
        """Insert a raw request; returns any streams force-flushed to make
        room (empty list in the common case).

        Atomics must not reach the aggregator (they bypass PAC entirely,
        Section 3.3.1) — the caller routes them around.
        """
        if req.op not in (MemOp.LOAD, MemOp.STORE):
            raise ValueError(f"non-coalescable op in aggregator: {req.op}")
        # One parallel comparator sweep across all active streams.
        self.stats.counter("comparisons").add(len(self.streams))
        self.stats.histogram("occupancy_at_insert").add(len(self.streams))
        if self._probes_on:
            self._t_occupancy.observe(now, len(self.streams))

        for stream in self.streams:
            if stream.matches(req):
                stream.add(req, now)
                self.stats.counter("merged_inserts").add()
                if self._probes_on:
                    self._t_merge.add(now)
                return []

        flushed: List[CoalescingStream] = []
        if self.full:
            # All slots busy: force-flush the oldest stream (earliest
            # allocation) so the new page gets a slot.
            oldest = min(self.streams, key=lambda s: s.alloc_cycle)
            self.streams.remove(oldest)
            flushed.append(oldest)
            self.stats.counter("forced_flushes").add()
            if self._probes_on:
                self._t_forced.add(now)
        self.streams.append(new_stream(req, self.protocol, now))
        deadline = now + self.timeout_cycles
        if self._min_deadline is None or deadline < self._min_deadline:
            self._min_deadline = deadline
        self.stats.counter("allocations").add()
        if self._probes_on:
            self._t_alloc.add(now)
        return flushed

    def fence(self, now: int) -> List[CoalescingStream]:
        """A memory fence monopolizes stage 1 and pushes every previous
        request to stage 2 (Section 3.3.1)."""
        flushed = list(self.streams)
        self.streams.clear()
        self._min_deadline = None
        self.stats.counter("fence_flushes").add(len(flushed))
        return flushed

    def drain(self) -> List[CoalescingStream]:
        """End-of-run flush of everything still buffered."""
        flushed = list(self.streams)
        self.streams.clear()
        self._min_deadline = None
        return flushed

    def sample_occupancy(self, now: int) -> None:
        """Record the number of occupied streams (the paper samples every
        16 cycles for Figure 11b/11c)."""
        self.stats.histogram("occupancy_samples").add(len(self.streams))
