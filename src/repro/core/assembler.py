"""Stage 3 — the request assembler (Section 3.3.3).

Consumes block sequences in FIFO order, references the coalescing table
(one cycle per sequence) and assembles the coalesced requests (one cycle
per request): "a coalesced request can be issued every 2 cycles".
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.common.stats import StatsRegistry
from repro.common.types import CoalescedRequest, PAGE_BYTES, new_packet
from repro.core.decoder import BlockSequence
from repro.core.protocols import CoalescingTable, MemoryProtocol
from repro.telemetry import NULL_TELEMETRY

#: Table lookup latency per block sequence, cycles.
LOOKUP_CYCLES = 1
#: Assembly latency per coalesced request, cycles.
ASSEMBLE_CYCLES = 1


class RequestAssembler:
    """Turns block sequences into protocol-legal coalesced packets."""

    def __init__(
        self,
        protocol: MemoryProtocol,
        table: Optional[CoalescingTable] = None,
        probes=NULL_TELEMETRY,
    ) -> None:
        self.protocol = protocol
        # The 16-entry coalescing table is shared by all request
        # assemblers (Section 5.3.3); callers may pass a shared instance.
        self.table = table if table is not None else CoalescingTable(protocol)
        self.stats = StatsRegistry("assembler")
        self._probes_on = probes.enabled
        self._t_packets = probes.counter("packets")
        self._t_cycles = probes.gauge("cycles")
        self._t_packet_bytes = probes.histogram("packet_bytes")
        self._c_sequences = self.stats.counter("sequences_assembled")
        self._c_packets = self.stats.counter("packets_produced")
        self._a_stage3 = self.stats.accumulator("stage3_cycles")
        #: n_grains -> protocol packet size; layouts draw from a handful
        #: of grain counts, so a tiny memo replaces the per-packet
        #: protocol method call.
        self._packet_bytes_memo = {}

    def assemble(
        self, seq: BlockSequence, start_cycle: int
    ) -> Tuple[List[CoalescedRequest], int]:
        """Assemble one block sequence beginning at ``start_cycle``.

        Returns ``(packets, finish_cycle)``; packet ``issue_cycle`` fields
        carry the per-packet assembly completion times.
        """
        proto = self.protocol
        layout = self.table.lookup(seq.pattern)
        grain_bytes = proto.grain_bytes
        page_base = seq.stream_ppn * PAGE_BYTES
        chunk_base = seq.chunk_index * proto.chunk_width
        cycle = start_cycle + LOOKUP_CYCLES
        op = seq.op
        grain_requests = seq.grain_requests
        size_memo = self._packet_bytes_memo
        packets: List[CoalescedRequest] = []
        append = packets.append
        for grain_offset, n_grains in layout:
            cycle += ASSEMBLE_CYCLES
            # A request spanning several grains is recorded on each; keep
            # the first occurrence only (order-preserving dedupe).
            constituents = tuple(
                dict.fromkeys(
                    rid
                    for g in range(grain_offset, grain_offset + n_grains)
                    for rid in grain_requests[g]
                )
            )
            if not constituents:
                raise AssertionError(
                    "coalescing table produced a packet over empty grains"
                )
            size = size_memo.get(n_grains)
            if size is None:
                size = proto.packet_bytes(n_grains)
                size_memo[n_grains] = size
            append(
                new_packet(
                    page_base + (chunk_base + grain_offset) * grain_bytes,
                    size,
                    op,
                    constituents,
                    cycle,
                    "pac",
                )
            )
        self._c_sequences.value += 1
        self._c_packets.value += len(packets)
        self._a_stage3.add(cycle - start_cycle)
        if self._probes_on:
            self._t_packets.add(start_cycle, len(packets))
            self._t_cycles.observe(start_cycle, cycle - start_cycle)
            for packet in packets:
                self._t_packet_bytes.add(packet.size)
        return packets, cycle
