"""Stage 3 — the request assembler (Section 3.3.3).

Consumes block sequences in FIFO order, references the coalescing table
(one cycle per sequence) and assembles the coalesced requests (one cycle
per request): "a coalesced request can be issued every 2 cycles".
"""

from __future__ import annotations

from typing import List, Tuple

from repro.common.stats import StatsRegistry
from repro.common.types import CoalescedRequest, PAGE_BYTES
from repro.core.decoder import BlockSequence
from repro.core.protocols import CoalescingTable, MemoryProtocol
from repro.telemetry import NULL_TELEMETRY

#: Table lookup latency per block sequence, cycles.
LOOKUP_CYCLES = 1
#: Assembly latency per coalesced request, cycles.
ASSEMBLE_CYCLES = 1


class RequestAssembler:
    """Turns block sequences into protocol-legal coalesced packets."""

    def __init__(
        self,
        protocol: MemoryProtocol,
        table: CoalescingTable = None,
        probes=NULL_TELEMETRY,
    ) -> None:
        self.protocol = protocol
        # The 16-entry coalescing table is shared by all request
        # assemblers (Section 5.3.3); callers may pass a shared instance.
        self.table = table if table is not None else CoalescingTable(protocol)
        self.stats = StatsRegistry("assembler")
        self._probes_on = probes.enabled
        self._t_packets = probes.counter("packets")
        self._t_cycles = probes.gauge("cycles")
        self._t_packet_bytes = probes.histogram("packet_bytes")

    def assemble(
        self, seq: BlockSequence, start_cycle: int
    ) -> Tuple[List[CoalescedRequest], int]:
        """Assemble one block sequence beginning at ``start_cycle``.

        Returns ``(packets, finish_cycle)``; packet ``issue_cycle`` fields
        carry the per-packet assembly completion times.
        """
        proto = self.protocol
        layout = self.table.lookup(seq.pattern)
        page_base = seq.stream_ppn * PAGE_BYTES
        chunk_base = seq.chunk_index * proto.chunk_width
        cycle = start_cycle + LOOKUP_CYCLES
        packets: List[CoalescedRequest] = []
        for grain_offset, n_grains in layout:
            cycle += ASSEMBLE_CYCLES
            # A request spanning several grains is recorded on each; keep
            # the first occurrence only (order-preserving dedupe).
            constituents: List[int] = list(
                dict.fromkeys(
                    rid
                    for g in range(grain_offset, grain_offset + n_grains)
                    for rid in seq.grain_requests[g]
                )
            )
            if not constituents:
                raise AssertionError(
                    "coalescing table produced a packet over empty grains"
                )
            packets.append(
                CoalescedRequest(
                    addr=page_base + (chunk_base + grain_offset) * proto.grain_bytes,
                    size=proto.packet_bytes(n_grains),
                    op=seq.op,
                    constituents=tuple(constituents),
                    issue_cycle=cycle,
                    source="pac",
                )
            )
        self.stats.counter("sequences_assembled").add()
        self.stats.counter("packets_produced").add(len(packets))
        self.stats.accumulator("stage3_cycles").add(cycle - start_cycle)
        if self._probes_on:
            self._t_packets.add(start_cycle, len(packets))
            self._t_cycles.observe(start_cycle, cycle - start_cycle)
            for packet in packets:
                self._t_packet_bytes.add(packet.size)
        return packets, cycle
