"""The three-stage pipelined coalescing network (Section 3.3, Figure 4).

:class:`CoalescingNetwork` wires the block-map decoder (stage 2) and the
request assembler (stage 3) behind the paged request aggregator. Given a
stream flushed out of stage 1 at some cycle it produces the coalesced
packets with their assembly-completion timestamps, honouring:

* the **C-bit bypass** — streams holding a single request skip stages
  2–3 and head straight for the MAQ with one cycle of latency;
* the serialized block-sequence-buffer writes between stages 2 and 3;
* the 1-cycle table lookup + 1-cycle-per-request assembly of stage 3,
  chained across the sequences of one stream (each coalescing stream has
  its own pipeline; different streams proceed in parallel).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.common.stats import StatsRegistry
from repro.common.types import CoalescedRequest, PAGE_BYTES, new_packet
from repro.core.assembler import RequestAssembler
from repro.core.decoder import BlockMapDecoder
from repro.core.protocols import CoalescingTable, MemoryProtocol
from repro.core.stream import CoalescingStream
from repro.telemetry import NULL_TELEMETRY

#: Exit latency of a C=0 stream that skips stages 2–3.
BYPASS_CYCLES = 1


class CoalescingNetwork:
    """Stages 2–3 of the pipeline, shared coalescing table included.

    ``probes`` is the *coalescer-level* telemetry scope: the network
    claims its own ``network`` namespace and hands ``stage2``/``stage3``
    sub-scopes to the decoder and assembler.
    """

    def __init__(self, protocol: MemoryProtocol, probes=NULL_TELEMETRY) -> None:
        self.protocol = protocol
        self.table = CoalescingTable(protocol)
        self.decoder = BlockMapDecoder(protocol, probes=probes.scope("stage2"))
        self.assembler = RequestAssembler(
            protocol, table=self.table, probes=probes.scope("stage3")
        )
        self.stats = StatsRegistry("network")
        net_probes = probes.scope("network")
        self._probes_on = probes.enabled
        self._t_bypassed = net_probes.counter("bypassed_requests")
        self._t_coalesced = net_probes.counter("coalesced_requests")
        self._t_pipeline_cycles = net_probes.gauge("stream_pipeline_cycles")
        self._c_bypassed_streams = self.stats.counter("bypassed_streams")
        self._c_bypassed_requests = self.stats.counter("bypassed_requests")
        self._c_coalesced_streams = self.stats.counter("coalesced_streams")
        self._c_coalesced_requests = self.stats.counter("coalesced_requests")
        self._a_pipeline_cycles = self.stats.accumulator("stream_pipeline_cycles")

    def flush_stream(
        self, stream: CoalescingStream, flush_cycle: int
    ) -> List[CoalescedRequest]:
        """Run a flushed stream through stages 2–3 (or the bypass).

        Returns packets whose ``issue_cycle`` is the cycle each becomes
        ready for the MAQ.
        """
        if not stream.coalescing_bit:
            # C = 0: single request — skip stages 2-3 (Section 3.3.1).
            # The packet covers every grain the lone request touched
            # (one 64B grain on HMC; e.g. two 32B grains on HBM).
            self._c_bypassed_streams.value += 1
            self._c_bypassed_requests.value += stream.n_requests
            if self._probes_on:
                self._t_bypassed.add(flush_cycle, stream.n_requests)
            grains = sorted(stream.grain_requests)
            first, last = grains[0], grains[-1]
            packet = new_packet(
                stream.ppn * PAGE_BYTES + first * self.protocol.grain_bytes,
                (last - first + 1) * self.protocol.grain_bytes,
                stream.op,
                tuple(dict.fromkeys(stream.grain_requests[first])),
                flush_cycle + BYPASS_CYCLES,
                "pac-bypass",
            )
            return [packet]

        self._c_coalesced_streams.value += 1
        self._c_coalesced_requests.value += stream.n_requests
        if self._probes_on:
            self._t_coalesced.add(flush_cycle, stream.n_requests)
        sequences = self.decoder.decode(stream, flush_cycle)
        packets: List[CoalescedRequest] = []
        # Sequences pop from the block sequence buffer in FIFO order and
        # feed this stream's assembler serially; buffer writes overlap
        # with assembly (Section 3.3.2 "the latency between the second and
        # third stages is eliminated").
        stage3_free = flush_cycle
        for seq in sequences:
            start = max(seq.ready_cycle, stage3_free)
            seq_packets, stage3_free = self.assembler.assemble(seq, start)
            packets.extend(seq_packets)
        self._a_pipeline_cycles.add(stage3_free - flush_cycle)
        if self._probes_on:
            self._t_pipeline_cycles.observe(flush_cycle, stage3_free - flush_cycle)
        return packets
