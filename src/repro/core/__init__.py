"""The paper's primary contribution: the paged adaptive coalescer."""

from repro.core.protocols import (
    HBM,
    HMC1,
    HMC2,
    HMC2_FINE,
    CoalescingTable,
    MemoryProtocol,
)
from repro.core.stream import CoalescingStream, new_stream
from repro.core.aggregator import PagedRequestAggregator
from repro.core.decoder import BlockMapDecoder, BlockSequence
from repro.core.assembler import RequestAssembler
from repro.core.maq import MemoryAccessQueue
from repro.core.network import CoalescingNetwork
from repro.core.pac import PagedAdaptiveCoalescer

__all__ = [
    "HBM",
    "HMC1",
    "HMC2",
    "HMC2_FINE",
    "CoalescingTable",
    "MemoryProtocol",
    "CoalescingStream",
    "new_stream",
    "PagedRequestAggregator",
    "BlockMapDecoder",
    "BlockSequence",
    "RequestAssembler",
    "MemoryAccessQueue",
    "CoalescingNetwork",
    "PagedAdaptiveCoalescer",
]
