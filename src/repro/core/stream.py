"""Coalescing streams — the per-page aggregation slots of stage 1.

Each stream holds the requests of one (physical page, op) group: the
PPN tag, the block-map bitmap, the coalescing bit C (more than one
request -> worth running through stages 2–3), and the type bit T
(Figure 4, Figure 5a). The T bit is folded into the comparator tag
exactly as in the paper (Section 3.3.1): store tags sort above all load
tags so one comparison covers page number and request type.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common import bitops
from repro.common.types import PAGE_BYTES, MemOp, MemoryRequest
from repro.core.protocols import MemoryProtocol


@dataclass(slots=True)
class CoalescingStream:
    """One active aggregation slot in the paged request aggregator."""

    tag: int  # (T << 52) | PPN — the combined comparator key
    ppn: int
    op: MemOp
    protocol: MemoryProtocol
    alloc_cycle: int
    block_map: int = 0
    #: req_ids per grain index, in arrival order (drives MSHR subentries
    #: and the packet constituent lists).
    grain_requests: Dict[int, List[int]] = field(default_factory=dict)
    n_requests: int = 0
    first_arrival: int = 0
    last_arrival: int = 0
    #: Whether the stream still occupies an aggregator slot. The
    #: aggregator's deadline heap deletes lazily: a force-flushed or
    #: fenced stream stays in the heap until its entry surfaces, and this
    #: flag marks the entry stale.
    resident: bool = True

    @property
    def coalescing_bit(self) -> bool:
        """C bit: set once the stream holds more than one request
        (Section 3.3.1); C=0 streams bypass stages 2–3."""
        return self.n_requests > 1

    @property
    def type_bit(self) -> int:
        """T bit: 0 = load, 1 = store."""
        return int(self.op == MemOp.STORE)

    def matches(self, req: MemoryRequest) -> bool:
        """One hardware comparison: PPN and T together."""
        return self.tag == req.tag()

    def add(self, req: MemoryRequest, now: int) -> None:
        """Merge a raw request: set every grain bit it covers, record
        its id on each (a 64B request covers two 32B HBM grains)."""
        addr = req.addr
        ppn = addr // PAGE_BYTES
        if ppn != self.ppn:
            raise ValueError(
                f"request page {ppn:#x} does not match stream {self.ppn:#x}"
            )
        # Inlined protocol.grain_index — this is the hottest per-request
        # loop in stage 1. ``req.size >= 1`` is enforced at construction.
        grain_bytes = self.protocol.grain_bytes
        offset = addr % PAGE_BYTES
        first = offset // grain_bytes
        last_off = offset + req.size - 1
        if last_off >= PAGE_BYTES:
            last_off = PAGE_BYTES - 1  # clamp at the page edge
        last = last_off // grain_bytes
        grain_requests = self.grain_requests
        req_id = req.req_id
        if first == last:
            # Common case: the request fits in one grain.
            self.block_map |= 1 << first
            bucket = grain_requests.get(first)
            if bucket is None:
                grain_requests[first] = [req_id]
            else:
                bucket.append(req_id)
        else:
            block_map = self.block_map
            for grain in range(first, last + 1):
                block_map |= 1 << grain  # grain indexes are non-negative
                bucket = grain_requests.get(grain)
                if bucket is None:
                    grain_requests[grain] = [req_id]
                else:
                    bucket.append(req_id)
            self.block_map = block_map
        if self.n_requests == 0:
            self.first_arrival = now
        self.n_requests += 1
        self.last_arrival = now

    def deadline(self, timeout_cycles: int) -> int:
        """Cycle at which the timeout flushes this stream (Section 3.3.1:
        an upper bound on the waiting latency of aggregated requests)."""
        return self.alloc_cycle + timeout_cycles

    @property
    def n_grains(self) -> int:
        return bitops.popcount(self.block_map)

    def request_ids(self) -> List[int]:
        """All merged request ids in grain order (then arrival order)."""
        out: List[int] = []
        for grain in sorted(self.grain_requests):
            out.extend(self.grain_requests[grain])
        return out


def new_stream(
    req: MemoryRequest,
    protocol: MemoryProtocol,
    now: int,
    tag: Optional[int] = None,
) -> CoalescingStream:
    """Allocate a stream for ``req``'s page and record the request.

    ``tag`` lets a caller that already computed :meth:`MemoryRequest.tag`
    (the aggregator does, for its comparator probe) skip recomputing it.
    """
    stream = CoalescingStream(
        tag=req.tag() if tag is None else tag,
        ppn=req.addr // PAGE_BYTES,
        op=MemOp.STORE if req.op == MemOp.STORE else MemOp.LOAD,
        protocol=protocol,
        alloc_cycle=now,
    )
    stream.add(req, now)
    return stream
