"""Memory-device protocols the coalescer adapts to (Section 4.1).

A :class:`MemoryProtocol` captures everything PAC needs to know about the
target 3D-stacked device: the coalescing *grain* (the unit tracked by one
block-map bit), the legal packet sizes, and the row size. Porting PAC to
a new device generation means swapping the protocol — "adjusting the size
of the block sequence buffer and coalescing table" — with no change to
the coalescing logic, exactly as the paper argues.

Provided instances:

* ``HMC2`` — HMC 2.1 (Table 1): 64B grain, packets {64,128,256}B.
* ``HMC1`` — HMC 1.0: max packet 128B.
* ``HBM``  — 32B access granularity (BL4 x 64-bit bus), 1KB rows; PAC
  "expands the block sequence to 16 bits" so packets reach the row size.
* ``HMC2_FINE`` — the Figure 10b experiment: coalescing at the CPU's
  actual data size over 16B FLIT grains, packets down to 16B.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.common import bitops
from repro.common.types import PAGE_BYTES


@dataclass(frozen=True)
class MemoryProtocol:
    """Device-facing coalescing parameters."""

    name: str
    #: Smallest unit the block-map tracks (bytes per map bit).
    grain_bytes: int
    #: Largest packet the device accepts.
    max_packet_bytes: int
    #: All packet sizes the device accepts, ascending.
    legal_packet_bytes: Tuple[int, ...]
    #: DRAM row size (bank conflict granularity).
    row_bytes: int

    def __post_init__(self) -> None:
        if self.grain_bytes <= 0 or PAGE_BYTES % self.grain_bytes:
            raise ValueError("grain must divide the page size")
        if self.max_packet_bytes % self.grain_bytes:
            raise ValueError("max packet must be a multiple of the grain")
        if not self.legal_packet_bytes:
            raise ValueError("need at least one legal packet size")
        if self.legal_packet_bytes[0] != self.grain_bytes:
            raise ValueError("smallest legal packet must equal the grain")
        if max(self.legal_packet_bytes) != self.max_packet_bytes:
            raise ValueError("largest legal packet must equal max_packet_bytes")
        for size in self.legal_packet_bytes:
            if size % self.grain_bytes:
                raise ValueError(f"illegal packet size {size}")

    @property
    def map_width(self) -> int:
        """Block-map bits per page (64 for HMC 2.1's 64B grain)."""
        return PAGE_BYTES // self.grain_bytes

    @property
    def chunk_width(self) -> int:
        """Bits per decoder chunk = max packet size in grains (4 for
        HMC 2.1, 16 for HBM row-sized packets)."""
        return self.max_packet_bytes // self.grain_bytes

    @property
    def n_chunks(self) -> int:
        return self.map_width // self.chunk_width

    @property
    def legal_grain_counts(self) -> Tuple[int, ...]:
        """Legal packet sizes expressed in grains, descending."""
        return tuple(
            sorted((s // self.grain_bytes for s in self.legal_packet_bytes),
                   reverse=True)
        )

    def grain_index(self, addr: int) -> int:
        """Map-bit index of ``addr`` within its page."""
        return (addr % PAGE_BYTES) // self.grain_bytes

    def packet_bytes(self, n_grains: int) -> int:
        return n_grains * self.grain_bytes


#: HMC 2.1 — the paper's Table 1 device.
HMC2 = MemoryProtocol(
    name="hmc2.1",
    grain_bytes=64,
    max_packet_bytes=256,
    legal_packet_bytes=(64, 128, 256),
    row_bytes=256,
)

#: HMC 1.0 — 128B maximum request (Section 4.1).
HMC1 = MemoryProtocol(
    name="hmc1.0",
    grain_bytes=64,
    max_packet_bytes=128,
    legal_packet_bytes=(64, 128),
    row_bytes=256,
)

#: HBM — 32B access granularity, packets up to the 1KB row (Section 4.1).
HBM = MemoryProtocol(
    name="hbm",
    grain_bytes=32,
    max_packet_bytes=1024,
    legal_packet_bytes=(32, 64, 128, 256, 512, 1024),
    row_bytes=1024,
)

#: HMC 2.1 in fine-grain mode: block-map over 16B FLITs, packets down to
#: one FLIT (the Figure 10b request-size-distribution experiment).
HMC2_FINE = MemoryProtocol(
    name="hmc2.1-fine",
    grain_bytes=16,
    max_packet_bytes=256,
    legal_packet_bytes=(16, 32, 64, 128, 256),
    row_bytes=256,
)


class CoalescingTable:
    """The stage-3 look-up table: chunk pattern -> packet layout.

    Maps every possible block-sequence pattern to its list of
    ``(grain_offset, n_grains)`` packets (Section 3.3.3). For HMC's 4-bit
    chunks this is the paper's 16-entry table; wider chunks (HBM) are
    materialized lazily so the 16-bit pattern space never has to be
    enumerated up front.
    """

    def __init__(self, protocol: MemoryProtocol) -> None:
        self.protocol = protocol
        self._table: Dict[int, Tuple[Tuple[int, int], ...]] = {}
        self.lookups = 0
        if protocol.chunk_width <= 8:
            for pattern in range(1 << protocol.chunk_width):
                self._table[pattern] = self._compute(pattern)

    def _compute(self, pattern: int) -> Tuple[Tuple[int, int], ...]:
        runs = bitops.contiguous_runs(pattern, self.protocol.chunk_width)
        return tuple(
            bitops.runs_to_packet_sizes(runs, self.protocol.legal_grain_counts)
        )

    def lookup(self, pattern: int) -> Tuple[Tuple[int, int], ...]:
        """Packets for a chunk pattern, each ``(grain_offset, n_grains)``."""
        if not 0 <= pattern < (1 << self.protocol.chunk_width):
            raise ValueError(
                f"pattern {pattern:#x} exceeds chunk width "
                f"{self.protocol.chunk_width}"
            )
        self.lookups += 1
        cached = self._table.get(pattern)
        if cached is None:
            cached = self._compute(pattern)
            self._table[pattern] = cached
        return cached

    def __len__(self) -> int:
        return len(self._table)
