"""The memory access queue (Section 3.1.2).

A FIFO between the coalescing network and the adaptive MSHRs, sized
equal to the MSHR count so the MSHRs can always be replenished without
exposing coalescing latency. Tracks the Figure 12b metric: the time to
fill the MAQ from empty to full (a *fill episode*).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.common.fifo import BoundedFIFO
from repro.common.stats import StatsRegistry
from repro.common.types import CoalescedRequest
from repro.telemetry import NULL_TELEMETRY


class MemoryAccessQueue:
    """Bounded FIFO of coalesced packets with fill-latency accounting."""

    def __init__(self, capacity: int = 16, probes=NULL_TELEMETRY) -> None:
        self._fifo: BoundedFIFO[Tuple[CoalescedRequest, int]] = BoundedFIFO(
            capacity, "maq"
        )
        self.capacity = capacity
        self.stats = StatsRegistry("maq")
        self._episode_start: Optional[int] = None
        self._probes_on = probes.enabled
        self._t_occupancy = probes.gauge("occupancy")
        self._t_full_stalls = probes.counter("full_stalls")
        self._t_fill_cycles = probes.gauge("fill_cycles")
        self._c_full_stalls = self.stats.counter("full_stalls")
        self._a_fill_cycles = self.stats.accumulator("fill_cycles")
        # The FIFO's deque is mutated in place, never rebound — bind it
        # once for the inlined per-packet push below.
        self._items = self._fifo._items

    def __len__(self) -> int:
        return len(self._fifo)

    @property
    def empty(self) -> bool:
        return self._fifo.empty

    @property
    def full(self) -> bool:
        return self._fifo.full

    def push(self, packet: CoalescedRequest, ready_cycle: int) -> bool:
        """Enqueue a packet that became ready at ``ready_cycle``. Returns
        False when full — the coalescing pipeline must stall (Section 3.2:
        "If the MAQ is full, the pipeline is stalled and the cache is
        subsequently blocked")."""
        # Inlined BoundedFIFO.push (occupancy bookkeeping included) —
        # this runs once per coalesced packet.
        fifo = self._fifo
        items = self._items
        occupancy = len(items)
        if occupancy >= self.capacity:
            self._c_full_stalls.value += 1
            if self._probes_on:
                self._t_full_stalls.add(ready_cycle)
            return False
        if not occupancy:
            self._episode_start = ready_cycle
        items.append((packet, ready_cycle))
        fifo.total_pushed += 1
        occupancy += 1
        if occupancy > fifo.peak_occupancy:
            fifo.peak_occupancy = occupancy
        if self._probes_on:
            self._t_occupancy.observe(ready_cycle, occupancy)
        if occupancy >= self.capacity and self._episode_start is not None:
            # Fill episode complete: empty -> full (Figure 12b).
            fill = ready_cycle - self._episode_start
            if fill < 0:
                fill = 0
            self._a_fill_cycles.add(fill)
            if self._probes_on:
                self._t_fill_cycles.observe(ready_cycle, fill)
            self._episode_start = None
        return True

    def pop(self) -> Tuple[CoalescedRequest, int]:
        """Dequeue ``(packet, ready_cycle)``."""
        return self._fifo.pop()

    def peek(self) -> Tuple[CoalescedRequest, int]:
        return self._fifo.peek()

    def head_ready_cycle(self) -> Optional[int]:
        if self._fifo.empty:
            return None
        return self._fifo.peek()[1]

    @property
    def mean_fill_cycles(self) -> float:
        return self.stats.accumulator("fill_cycles").mean
