"""Stage 2 — the block-map decoder (Section 3.3.2).

Partitions a flushed stream's block-map into chunks of the protocol's
maximum packet width (16 four-bit chunks for HMC 2.1) and pushes each
non-empty chunk into the block sequence buffer. Decoding itself takes
two pipeline cycles (one to decode in parallel OR gates, one to store);
because the buffer shares a data bus, the chunks are written
sequentially, one per cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.common import bitops
from repro.common.stats import StatsRegistry
from repro.core.protocols import MemoryProtocol
from repro.core.stream import CoalescingStream
from repro.telemetry import NULL_TELEMETRY

#: Decode + first store, in cycles (Section 3.3.2: "the latency of the
#: decoding procedure is restricted to 2 pipeline cycles").
DECODE_CYCLES = 2


@dataclass(slots=True)
class BlockSequence:
    """One entry of the block sequence buffer: a non-empty chunk of a
    stream's block-map, ready for the request assembler.

    Not frozen: one is built per non-empty chunk of every flushed
    stream, so construction sits on the stage-2 hot path and the
    frozen-dataclass init costs ~4x a plain one. Sequences flow straight
    from the decoder into the assembler and are treated as immutable by
    convention."""

    stream_ppn: int
    op: object  # MemOp; kept loose to avoid churn in frozen dataclass eq
    chunk_index: int
    pattern: int
    #: Cycle at which this sequence lands in the buffer.
    ready_cycle: int
    #: req_ids per grain offset within this chunk (grain order).
    grain_requests: tuple


class BlockMapDecoder:
    """Decodes flushed streams into block sequences."""

    def __init__(self, protocol: MemoryProtocol, probes=NULL_TELEMETRY) -> None:
        self.protocol = protocol
        self.stats = StatsRegistry("decoder")
        self._probes_on = probes.enabled
        self._t_sequences = probes.counter("sequences")
        self._t_cycles = probes.gauge("cycles")
        self._c_streams = self.stats.counter("streams_decoded")
        self._c_sequences = self.stats.counter("sequences_produced")
        self._a_stage2 = self.stats.accumulator("stage2_cycles")

    def decode(
        self, stream: CoalescingStream, flush_cycle: int
    ) -> List[BlockSequence]:
        """Decode one stream flushed at ``flush_cycle``.

        Returns the block sequences in buffer (FIFO) order, each stamped
        with the cycle it becomes available — the j-th non-empty chunk
        lands at ``flush_cycle + DECODE_CYCLES + j`` because writes share
        the data bus.
        """
        proto = self.protocol
        chunk_width = proto.chunk_width
        chunks = bitops.nonzero_chunks(
            stream.block_map, proto.map_width, chunk_width
        )
        sequences: List[BlockSequence] = []
        append = sequences.append
        bucket = stream.grain_requests.get
        ppn = stream.ppn
        op = stream.op
        ready_base = flush_cycle + DECODE_CYCLES
        for j, (chunk_index, pattern) in enumerate(chunks):
            base_grain = chunk_index * chunk_width
            grain_reqs = tuple(
                tuple(bucket(base_grain + g, ()))
                for g in range(chunk_width)
            )
            append(
                BlockSequence(
                    ppn, op, chunk_index, pattern, ready_base + j, grain_reqs
                )
            )
        n_seq = len(sequences)
        self._c_streams.value += 1
        self._c_sequences.value += n_seq
        if n_seq:
            # Stage-2 residency of this stream: decode + serialized stores.
            self._a_stage2.add(DECODE_CYCLES + n_seq - 1)
            if self._probes_on:
                self._t_sequences.add(flush_cycle, n_seq)
                self._t_cycles.observe(flush_cycle, DECODE_CYCLES + n_seq - 1)
        return sequences
