"""The miss queue and write-back queue between the LLC and the coalescer.

Figure 3 buffers LLC misses and write-backs separately before they reach
the PAC. The queues preserve overall cycle order when drained together.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.common.fifo import BoundedFIFO
from repro.common.types import MemOp, MemoryRequest


class RequestQueues:
    """Paired miss/WB queues feeding the coalescer in cycle order."""

    def __init__(self, miss_capacity: int = 64, wb_capacity: int = 64) -> None:
        self.miss_queue: BoundedFIFO[MemoryRequest] = BoundedFIFO(
            miss_capacity, "miss_queue"
        )
        self.wb_queue: BoundedFIFO[MemoryRequest] = BoundedFIFO(
            wb_capacity, "wb_queue"
        )

    def push(self, req: MemoryRequest) -> bool:
        """Route a raw request to the right queue; False when full (stall)."""
        queue = self.wb_queue if req.op == MemOp.STORE else self.miss_queue
        return queue.try_push(req)

    def pop_next(self) -> Optional[MemoryRequest]:
        """Pop whichever queue's head is oldest (global cycle order)."""
        m = self.miss_queue.peek() if self.miss_queue else None
        w = self.wb_queue.peek() if self.wb_queue else None
        if m is None and w is None:
            return None
        if w is None or (m is not None and m.cycle <= w.cycle):
            return self.miss_queue.pop()
        return self.wb_queue.pop()

    def drain(self) -> Iterator[MemoryRequest]:
        while True:
            req = self.pop_next()
            if req is None:
                return
            yield req

    @property
    def empty(self) -> bool:
        return self.miss_queue.empty and self.wb_queue.empty

    def __len__(self) -> int:
        return len(self.miss_queue) + len(self.wb_queue)
