"""Batched cache front-end: the array-backed twin of `CacheHierarchy`.

:class:`BatchedCacheHierarchy` consumes a whole :class:`AccessTrace` and
produces the *identical* :class:`~repro.cache.hierarchy.RawStream` the
scalar reference produces — same requests in the same cycle order, same
eager OoO secondaries, same streamer-prefetcher decisions, same LLC
write-back stream, same ``StatsRegistry`` counters. The bit-identity
contract is enforced by ``tests/cache/test_batched_frontend.py``, the
Hypothesis suite next to it, and the CI front-end parity step; the
engine is only allowed to exist while those pass.

Where the time goes, and how this file wins it back
---------------------------------------------------
The reference loop pays, per access: a numpy-scalar unboxing, two
method calls into :class:`SetAssociativeCache`, an ``OrderedDict``
probe + ``move_to_end``, and per-emission ``MemoryRequest`` dataclass
``__init__``/``__post_init__``. This implementation:

* decomposes the whole trace up front with the vectorized shift/mask
  kernels (:func:`repro.mem.address.line_addresses` /
  :func:`~repro.mem.address.set_slot_bases`) and converts every column
  to native Python lists once;
* replaces each per-set ``OrderedDict`` with the flat way arrays of
  :class:`repro.cache.setassoc.FlatLRU` — a dict residency probe plus
  age-stamp arrays, shared across the L1s and the LLC via one
  monotonic tick (min-stamp victim scan ≡ ``popitem(last=False)``);
* emits requests through the ``new_request`` fast constructor;
* accumulates all counters in local ints and merges them into the real
  ``StatsRegistry`` objects once per :meth:`process` call — the same
  pattern :mod:`repro.core.pac_batched` established.

Like the batched coalescer, this engine is incompatible with the probe
facilities: telemetry counters and span origins observe per-emission
state the batched loop deliberately skips. The constructor refuses
enabled probes/spans; :class:`repro.engine.system.System` auto-demotes
to the reference front-end instead of tripping that refusal.

One observable difference is documented and accepted: the inherited
``SetAssociativeCache`` objects serve as geometry + stats carriers only
— their ``OrderedDict`` sets stay empty, so ``occupancy`` reads zero.
Hit rates, ``summary_metrics`` and every engine-facing consumer go
through the merged stats, which are identical.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.cache.hierarchy import (
    PREFETCH_REGION_BYTES,
    CacheHierarchy,
    RawStream,
)
from repro.cache.setassoc import FlatLRU
from repro.common import types as _ct
from repro.common.types import MemOp, MemoryRequest, PAGE_BYTES, new_request
from repro.mem.address import line_addresses
from repro.mem.trace import AccessTrace
from repro.telemetry import NULL_SPANS, NULL_TELEMETRY


class BatchedCacheHierarchy(CacheHierarchy):
    """Array-backed front-end, bit-identical to :class:`CacheHierarchy`."""

    def __init__(
        self,
        config,
        n_cores: int = 8,
        secondary_cap: int = CacheHierarchy.DEFAULT_SECONDARY_CAP,
        lookahead_window: int = CacheHierarchy.DEFAULT_LOOKAHEAD,
        prefetch_enabled: bool = True,
        probes=NULL_TELEMETRY,
        spans=NULL_SPANS,
    ) -> None:
        if getattr(probes, "enabled", False):
            raise ValueError(
                "the batched front-end skips the per-emission state the "
                "telemetry probes observe — use engine='reference' for "
                "probe runs"
            )
        if getattr(spans, "enabled", False):
            raise ValueError(
                "the batched front-end does not stamp span origins — "
                "use engine='reference' for span runs"
            )
        super().__init__(
            config,
            n_cores=n_cores,
            secondary_cap=secondary_cap,
            lookahead_window=lookahead_window,
            prefetch_enabled=prefetch_enabled,
            probes=probes,
            spans=spans,
        )
        #: Flat LRU state shadowing the (empty) OrderedDict caches.
        self._flat_l1s: List[FlatLRU] = [FlatLRU(l1) for l1 in self.l1s]
        self._flat_llc = FlatLRU(self.llc)
        #: One monotonic age-stamp counter shared by every cache level —
        #: LRU order only compares stamps within one set of one cache,
        #: so uniqueness + monotonicity is all that matters.
        self._tick = 0

    # ------------------------------------------------------------------ #

    def process(self, trace: AccessTrace, fine_grain: bool = False) -> RawStream:
        """Single-pass batched replay of the reference ``process`` loop.

        The control flow below is a line-for-line mirror of
        ``CacheHierarchy.process`` + ``_prefetch`` — every branch in the
        same order, so the emission stream and the LRU state evolve
        identically — with the per-access object machinery replaced by
        flat arrays and local ints. Resist "obvious" reorderings: the
        victim chosen by a full set depends on every prior touch.
        """
        config = self.config
        line = config.line_bytes
        n_cores = self.n_cores
        n = len(trace)

        # ---- vectorized trace decomposition (one pass per column) ---- #
        # Only the columns the *hit path* reads are materialized as
        # full lists (line address, core, op — see the loop header);
        # everything the miss path needs (cycle, exact address, set slot
        # base, page) is fetched or computed lazily per miss. On the
        # hit-dominated traces (hpcg, stream) the per-iteration tuple
        # unpack is the loop's fixed cost, and three columns beat nine.
        addrs_arr = np.asarray(trace.addrs, dtype=np.int64)
        line_arr = line_addresses(addrs_arr, line)
        l1_geom = self._flat_l1s[0]
        llc_geom = self._flat_llc
        l1_ways = l1_geom.ways
        llc_ways = llc_geom.ways

        ops_arr = np.asarray(trace.ops)
        prefetch_on = self.prefetch_enabled
        line_addrs = line_arr.tolist()
        ops = ops_arr.tolist()
        cycles = np.asarray(trace.cycles).tolist()
        atomic_val = int(MemOp.ATOMIC)
        fence_val = int(MemOp.FENCE)
        store_val = int(MemOp.STORE)
        sizes = None
        addrs = None
        if fine_grain or bool((ops_arr == atomic_val).any()):
            sizes = np.asarray(trace.sizes).tolist()
            addrs = addrs_arr.tolist()

        # Per-core next-same-line-occurrence chains for the OoO
        # lookahead. The reference scans the next ``window`` accesses of
        # the issuing core for the missing line on every primary miss;
        # here a stable argsort groups each core's equal line addresses
        # in position order, giving ``nxt[p]`` = the next position after
        # ``p`` touching the same line (−1 if none). A lookahead is then
        # at most ``secondary_cap`` chain hops and window compares —
        # no per-miss scan, and no ``ValueError`` for the (common)
        # no-secondary case.
        core_mod = np.asarray(trace.cores) % n_cores
        cores = core_mod.tolist()
        # pos0[i]: this access's 0-based position within its core's
        # stream — precomputed so the loop never maintains per-core
        # position counters (read only on primary misses).
        pos0_arr = np.empty(n, dtype=np.int64)
        core_nxt = []
        core_idx_lists = []
        for c in range(n_cores):
            idx = np.flatnonzero(core_mod == c)
            pos0_arr[idx] = np.arange(len(idx), dtype=np.int64)
            lines_c = line_arr[idx]
            m = len(lines_c)
            nxt = np.full(m, -1, dtype=np.int64)
            if m > 1:
                order = np.argsort(lines_c, kind="stable")
                same = lines_c[order][1:] == lines_c[order][:-1]
                nxt[order[:-1][same]] = order[1:][same]
            core_nxt.append(nxt.tolist())
            core_idx_lists.append(idx.tolist() if fine_grain else None)
        pos0 = pos0_arr.tolist()

        # ---- flat LRU state, bound to locals ---- #
        l1_slots = [f.slots for f in self._flat_l1s]
        l1_getters = [f.slots.get for f in self._flat_l1s]
        l1_tags = [f.tags for f in self._flat_l1s]
        l1_stamps = [f.stamps for f in self._flat_l1s]
        l1_dirty = [f.dirty for f in self._flat_l1s]
        l1_lens = [f.lens for f in self._flat_l1s]
        llc_slots = llc_geom.slots
        llc_get = llc_slots.get
        llc_tags = llc_geom.tags
        llc_stamps = llc_geom.stamps
        llc_dirt = llc_geom.dirty
        llc_lens = llc_geom.lens
        tick = self._tick

        l1_shift = l1_geom._line_shift
        l1_mask = l1_geom._set_mask
        llc_shift = llc_geom._line_shift
        llc_mask = llc_geom._set_mask
        l1_n_sets = l1_geom.n_sets
        llc_n_sets = llc_geom.n_sets

        if l1_shift is not None:
            def l1_base(a):
                return ((a >> l1_shift) & l1_mask) * l1_ways
        else:
            def l1_base(a):
                return ((a // line) % l1_n_sets) * l1_ways

        if llc_shift is not None:
            def llc_base(a):
                return ((a >> llc_shift) & llc_mask) * llc_ways
        else:
            def llc_base(a):
                return ((a // line) % llc_n_sets) * llc_ways

        # Every fill site — this closure, both demand-miss sites, and
        # the three inlined prefetch-path installs in the main loop —
        # carries its own copy of the :meth:`FlatLRU.fill` body:
        # min-stamp victim == OrderedDict.popitem(last=False), with the
        # slice+min+index scan running at C speed (~2x a Python scan).
        # A shared closure was measurably slower at gs's fill volume.
        # ``llc_install`` remains a closure only for the cold demand-
        # side L1-victim write-back path.

        def llc_install(line_addr, dirty_flag):
            """``llc.install``: touch if present, else fill (no counters)."""
            nonlocal tick
            slot = llc_get(line_addr)
            if slot is not None:
                llc_stamps[slot] = tick
                tick += 1
                if dirty_flag:
                    llc_dirt[slot] = True
                return None
            base = llc_base(line_addr)
            end = base + llc_ways
            writeback = None
            if llc_lens[base] >= llc_ways:
                set_stamps = llc_stamps[base:end]
                slot = base + set_stamps.index(min(set_stamps))
                victim = llc_tags[slot]
                del llc_slots[victim]
                if llc_dirt[slot]:
                    writeback = victim
            else:
                llc_lens[base] += 1
                slot = base + llc_tags[base:end].index(-1)
            llc_tags[slot] = line_addr
            llc_dirt[slot] = dirty_flag
            llc_stamps[slot] = tick
            tick += 1
            llc_slots[line_addr] = slot
            return writeback

        # ---- locally-accumulated counters (merged once at the end) ---- #
        raw_n = sec_n = pf_n = wb_n = atom_n = fence_n = 0
        # Per-core L1 *demand* probes (every LOAD/STORE probes its L1
        # exactly once) — hits come out as ``demand - misses``, so the
        # hot hit path carries no counter at all.
        l1_demand_n = np.bincount(
            core_mod[ops_arr < atomic_val], minlength=n_cores
        ).tolist()
        l1_miss_n = [0] * n_cores
        l1_dev_n = [0] * n_cores
        llc_hit_n = llc_miss_n = llc_dev_n = 0

        out: List[MemoryRequest] = []
        out_append = out.append
        _nr = new_request
        # Hot emission sites build requests inline through the bound
        # slot descriptors (``new_request``'s own internals) — the call
        # frame is ~25% of the constructor at this emission volume.
        # Cold sites (atomics, fences, fine-grain payloads) keep the
        # readable ``_nr`` wrapper. ``req_next`` is rebound per call so
        # ``reset_request_ids`` between calls keeps working.
        mr_new = _ct.MemoryRequest.__new__
        MR = _ct.MemoryRequest
        s_addr = _ct._set_addr
        s_size = _ct._set_size
        s_op = _ct._set_op
        s_core = _ct._set_core
        s_cyc = _ct._set_cycle
        s_rid = _ct._set_req_id
        req_next = _ct._req_counter.__next__
        STORE = MemOp.STORE
        LOAD = MemOp.LOAD
        ATOMIC = MemOp.ATOMIC
        FENCE = MemOp.FENCE
        secondary_cap = self.secondary_cap
        window = self.lookahead_window
        stride_tables = self._stride_tables
        stride_cap = self._stride_table_cap
        region_span = PREFETCH_REGION_BYTES * (1 + config.prefetch_regions)

        # The zip carries only the three hit-path columns; ``enumerate``
        # supplies the index for the lazy miss-path reads. On an L1 hit
        # the loop body is: position bump, op compare, dict probe, stamp
        # refresh, counter — nothing else.
        for i, (line_addr, core, op_val) in enumerate(zip(line_addrs, cores, ops)):
            if op_val >= atomic_val:
                cycle = cycles[i]
                if op_val == atomic_val:
                    # Atomics bypass the caches and invalidate the line.
                    # (The evicted slot's stale dirty bit is never read:
                    # `fill` overwrites it when the slot is re-claimed.)
                    slot = l1_slots[core].pop(line_addr, None)
                    if slot is not None:
                        l1_tags[core][slot] = -1
                        l1_lens[core][slot - slot % l1_ways] -= 1
                    slot = llc_slots.pop(line_addr, None)
                    if slot is not None:
                        llc_tags[slot] = -1
                        llc_lens[slot - slot % llc_ways] -= 1
                    atom_n += 1
                    out_append(_nr(addrs[i], sizes[i], ATOMIC, core, cycle))
                else:
                    # Fences propagate as line-aligned drain markers.
                    fence_n += 1
                    out_append(_nr(line_addr, line, FENCE, core, cycle))
                continue

            # L1 access (inlined FlatLRU hit path). ``op_val`` is 0/1
            # here (atomics/fences peeled off above), so its truthiness
            # IS the store bit — no compare on the hit path. Hits are
            # not counted per access either: every LOAD/STORE probes the
            # L1 exactly once, so per-core hits are derived after the
            # loop as demand accesses minus misses.
            slot = l1_getters[core](line_addr)
            if slot is not None:
                l1_stamps[core][slot] = tick
                tick += 1
                if op_val:
                    l1_dirty[core][slot] = True
                continue
            is_store = op_val == store_val
            cycle = cycles[i]
            l1_miss_n[core] += 1
            # Demand-miss fill, inlined (the `fill` closure body over
            # this core's L1 state — the call frame is measurable at
            # this miss volume).
            tags_c = l1_tags[core]
            stamps_c = l1_stamps[core]
            dirt_c = l1_dirty[core]
            lens_c = l1_lens[core]
            slots_c = l1_slots[core]
            base = l1_base(line_addr)
            end = base + l1_ways
            victim = None
            if lens_c[base] >= l1_ways:
                set_stamps = stamps_c[base:end]
                slot = base + set_stamps.index(min(set_stamps))
                v = tags_c[slot]
                del slots_c[v]
                if dirt_c[slot]:
                    victim = v
            else:
                lens_c[base] += 1
                slot = base + tags_c[base:end].index(-1)
            tags_c[slot] = line_addr
            dirt_c[slot] = is_store
            stamps_c[slot] = tick
            tick += 1
            slots_c[line_addr] = slot
            if victim is not None:
                l1_dev_n[core] += 1
                llc_wb = llc_install(victim, True)
                if llc_wb is not None:
                    wb_n += 1
                    r = mr_new(MR)
                    s_addr(r, llc_wb)
                    s_size(r, line)
                    s_op(r, STORE)
                    s_core(r, core)
                    s_cyc(r, cycle)
                    s_rid(r, req_next())
                    out_append(r)

            # LLC access (inlined).
            slot = llc_get(line_addr)
            if slot is not None:
                llc_stamps[slot] = tick
                tick += 1
                if is_store:
                    llc_dirt[slot] = True
                llc_hit_n += 1
                continue
            llc_miss_n += 1
            # Demand-miss fill into the LLC, inlined as above.
            base = llc_base(line_addr)
            end = base + llc_ways
            llc_wb = None
            if llc_lens[base] >= llc_ways:
                set_stamps = llc_stamps[base:end]
                slot = base + set_stamps.index(min(set_stamps))
                v = llc_tags[slot]
                del llc_slots[v]
                if llc_dirt[slot]:
                    llc_wb = v
            else:
                llc_lens[base] += 1
                slot = base + llc_tags[base:end].index(-1)
            llc_tags[slot] = line_addr
            llc_dirt[slot] = is_store
            llc_stamps[slot] = tick
            tick += 1
            llc_slots[line_addr] = slot
            if llc_wb is not None:
                llc_dev_n += 1
                wb_n += 1
                r = mr_new(MR)
                s_addr(r, llc_wb)
                s_size(r, line)
                s_op(r, STORE)
                s_core(r, core)
                s_cyc(r, cycle)
                s_rid(r, req_next())
                out_append(r)

            # LLC demand miss -> primary raw request.
            op = STORE if is_store else LOAD
            raw_n += 1
            if fine_grain:
                out_append(_nr(addrs[i], sizes[i], op, core, cycle))
            else:
                r = mr_new(MR)
                s_addr(r, line_addr)
                s_size(r, line)
                s_op(r, op)
                s_core(r, core)
                s_cyc(r, cycle)
                s_rid(r, req_next())
                out_append(r)

            # OoO lookahead: eager same-line secondaries via the
            # next-occurrence chain. ``k`` starts at this access's own
            # per-core position; each hop lands on the next future
            # access of the same line, accepted while inside the window.
            if secondary_cap:
                nxt = core_nxt[core]
                k = pos0[i]
                stop = k + 1 + window
                emitted = 0
                while True:
                    k = nxt[k]
                    if k < 0 or k >= stop:
                        break
                    sec_n += 1
                    raw_n += 1
                    if fine_grain:
                        j = core_idx_lists[core][k]
                        out_append(_nr(addrs[j], sizes[j], op, core, cycle))
                    else:
                        r = mr_new(MR)
                        s_addr(r, line_addr)
                        s_size(r, line)
                        s_op(r, op)
                        s_core(r, core)
                        s_cyc(r, cycle)
                        s_rid(r, req_next())
                        out_append(r)
                    emitted += 1
                    if emitted >= secondary_cap:
                        break

            # Region streamer prefetch (inlined `_prefetch`).
            if prefetch_on:
                page = line_addr // PAGE_BYTES
                table = stride_tables[core]
                last = table.get(page)
                table[page] = line_addr
                if len(table) > stride_cap:
                    del table[next(iter(table))]
                if last is not None and 0 < line_addr - last <= 2 * PREFETCH_REGION_BYTES:
                    region_end = (
                        line_addr - line_addr % PREFETCH_REGION_BYTES + region_span
                    )
                    page_end = page * PAGE_BYTES + PAGE_BYTES
                    stop_pf = region_end if region_end < page_end else page_end
                    pf = line_addr + line
                    # The three install sites below are the FlatLRU
                    # install bodies inlined — at gs's fill volume
                    # (~14k L1 + ~18k LLC installs per 20k accesses)
                    # closure call frames alone were ~1/3 of the
                    # stage. The `pf` LLC fill also skips its residency
                    # probe: the loop guard just established
                    # ``pf not in llc_slots``, and the victim install in
                    # between only ever inserts the (distinct) evicted
                    # L1 tag.
                    while pf < stop_pf:
                        if pf not in llc_slots:
                            # l1.install(pf): touch if present, else
                            # clean fill with min-stamp victim scan.
                            l1_victim = None
                            slot = l1_getters[core](pf)
                            if slot is not None:
                                l1_stamps[core][slot] = tick
                                tick += 1
                            else:
                                tags_c = l1_tags[core]
                                stamps_c = l1_stamps[core]
                                dirt_c = l1_dirty[core]
                                lens_c = l1_lens[core]
                                slots_c = l1_slots[core]
                                base = l1_base(pf)
                                end = base + l1_ways
                                if lens_c[base] >= l1_ways:
                                    set_stamps = stamps_c[base:end]
                                    slot = base + set_stamps.index(
                                        min(set_stamps)
                                    )
                                    v = tags_c[slot]
                                    del slots_c[v]
                                    if dirt_c[slot]:
                                        l1_victim = v
                                else:
                                    lens_c[base] += 1
                                    slot = base + tags_c[base:end].index(-1)
                                tags_c[slot] = pf
                                dirt_c[slot] = False
                                stamps_c[slot] = tick
                                tick += 1
                                slots_c[pf] = slot
                            if l1_victim is not None:
                                # llc.install(victim, dirty): full probe
                                # + fill — the victim may be resident.
                                llc_wb = None
                                slot = llc_get(l1_victim)
                                if slot is not None:
                                    llc_stamps[slot] = tick
                                    tick += 1
                                    llc_dirt[slot] = True
                                else:
                                    base = llc_base(l1_victim)
                                    end = base + llc_ways
                                    if llc_lens[base] >= llc_ways:
                                        set_stamps = llc_stamps[base:end]
                                        slot = base + set_stamps.index(
                                            min(set_stamps)
                                        )
                                        v = llc_tags[slot]
                                        del llc_slots[v]
                                        if llc_dirt[slot]:
                                            llc_wb = v
                                    else:
                                        llc_lens[base] += 1
                                        slot = base + llc_tags[
                                            base:end
                                        ].index(-1)
                                    llc_tags[slot] = l1_victim
                                    llc_dirt[slot] = True
                                    llc_stamps[slot] = tick
                                    tick += 1
                                    llc_slots[l1_victim] = slot
                                if llc_wb is not None:
                                    wb_n += 1
                                    out_append(_nr(llc_wb, line, STORE, core, cycle))
                            # llc.install(pf, clean): fill only — not
                            # resident by the loop guard above.
                            llc_wb = None
                            base = llc_base(pf)
                            end = base + llc_ways
                            if llc_lens[base] >= llc_ways:
                                set_stamps = llc_stamps[base:end]
                                slot = base + set_stamps.index(min(set_stamps))
                                v = llc_tags[slot]
                                del llc_slots[v]
                                if llc_dirt[slot]:
                                    llc_wb = v
                            else:
                                llc_lens[base] += 1
                                slot = base + llc_tags[base:end].index(-1)
                            llc_tags[slot] = pf
                            llc_dirt[slot] = False
                            llc_stamps[slot] = tick
                            tick += 1
                            llc_slots[pf] = slot
                            if llc_wb is not None:
                                wb_n += 1
                                out_append(_nr(llc_wb, line, STORE, core, cycle))
                            pf_n += 1
                            raw_n += 1
                            r = mr_new(MR)
                            s_addr(r, pf)
                            s_size(r, line)
                            s_op(r, op)
                            s_core(r, core)
                            s_cyc(r, cycle)
                            s_rid(r, req_next())
                            out_append(r)
                        pf += line

        # ---- merge local counters into the real registries ---- #
        self._tick = tick
        for f in self._flat_l1s:
            f.tick = tick
        self._flat_llc.tick = tick
        stats = self.stats
        stats.counter("raw_requests").value += raw_n
        stats.counter("secondary_raw").value += sec_n
        stats.counter("prefetch_raw").value += pf_n
        stats.counter("writebacks").value += wb_n
        # Atomics/fences counters are created lazily in the reference —
        # only merge (and thereby create) them when they occurred.
        if atom_n:
            stats.counter("atomics").value += atom_n
        if fence_n:
            stats.counter("fences").value += fence_n
        for c in range(n_cores):
            l1 = self.l1s[c]
            l1._c_hits.value += l1_demand_n[c] - l1_miss_n[c]
            l1._c_misses.value += l1_miss_n[c]
            l1._c_dirty_evictions.value += l1_dev_n[c]
        llc = self.llc
        llc._c_hits.value += llc_hit_n
        llc._c_misses.value += llc_miss_n
        llc._c_dirty_evictions.value += llc_dev_n
        return RawStream(requests=out, n_accesses=n, stats=stats)
