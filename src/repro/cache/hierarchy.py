"""Per-core L1 + shared LLC hierarchy producing the raw request stream.

The hierarchy turns a CPU access trace into the *raw request stream* the
coalescers consume — the paper's "cache misses (load/store) and
write-back requests from the LLC" (Section 3.2).

Out-of-order lookahead (secondary misses)
-----------------------------------------
The paper's architecture places the only MSHRs *below* the LLC
(Figure 3), so a miss to a line whose fill is outstanding cannot be
merged above the coalescer — it propagates downstream as another raw
request, and merging it is precisely the job of the MSHR-based DMC
baseline (and of PAC's adaptive MSHRs). An out-of-order core has those
follow-up accesses *already in its load queue* when the primary miss
issues, so we model them eagerly: on a demand miss, the core's next
``lookahead_window`` accesses are scanned and up to ``secondary_cap``
same-line accesses issue immediately as *secondary* raw requests,
back-to-back with the primary. Dense scans (several touches per line)
produce same-line duplicates the DMC can merge; sparse single-touch
probes (graph workloads) produce none — matching the paper's
benchmark-to-benchmark DMC spread.

Region streamer prefetcher
--------------------------
On a demand miss that continues an ascending stride within a page, the
streamer fetches the remaining lines of the current 256B-aligned region
plus the next ``prefetch_regions`` whole regions (stopping at the page
boundary) — the adjacent-line/streamer behaviour of contemporary cores.
Prefetch raw requests are real memory traffic in every evaluation arm;
PAC additionally coalesces them (Section 4.2: "PAC can coalesce not only
raw requests but also the prefetch requests").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.common.stats import StatsRegistry
from repro.common.types import MemOp, MemoryRequest, PAGE_BYTES
from repro.config import CacheConfig
from repro.cache.setassoc import SetAssociativeCache
from repro.mem.trace import AccessTrace
from repro.telemetry import NULL_SPANS, NULL_TELEMETRY

#: Streamer prefetch region: matches the HMC row / maximum packet size.
PREFETCH_REGION_BYTES = 256


@dataclass
class RawStream:
    """The coalescer-facing output of the cache hierarchy.

    ``requests`` is ordered by cycle and mixes demand misses (tagged with
    the op that triggered them), eager secondaries, prefetches, and LLC
    write-backs (always stores).
    """

    requests: List[MemoryRequest]
    n_accesses: int
    stats: StatsRegistry

    @property
    def miss_rate(self) -> float:
        return len(self.requests) / self.n_accesses if self.n_accesses else 0.0


class CacheHierarchy:
    """N private L1s over one shared LLC; produces the raw request stream."""

    #: Same-line secondary raw requests emitted per demand miss.
    DEFAULT_SECONDARY_CAP = 2
    #: How far ahead (in the same core's accesses) the OoO window looks.
    DEFAULT_LOOKAHEAD = 64

    def __init__(
        self,
        config: CacheConfig,
        n_cores: int = 8,
        secondary_cap: int = DEFAULT_SECONDARY_CAP,
        lookahead_window: int = DEFAULT_LOOKAHEAD,
        prefetch_enabled: bool = True,
        probes=NULL_TELEMETRY,
        spans=NULL_SPANS,
    ) -> None:
        if n_cores <= 0:
            raise ValueError("need at least one core")
        if secondary_cap < 0:
            raise ValueError("secondary_cap must be >= 0")
        if lookahead_window < 0:
            raise ValueError("lookahead_window must be >= 0")
        self.config = config
        self.n_cores = n_cores
        self.secondary_cap = secondary_cap
        self.lookahead_window = lookahead_window
        self.prefetch_enabled = prefetch_enabled and config.prefetch_regions > 0
        #: Per-core stride detector: last demand-missed line per page
        #: (bounded table — real streamers track a handful of concurrent
        #: streams per core).
        self._stride_tables: List[Dict[int, int]] = [
            dict() for _ in range(n_cores)
        ]
        self._stride_table_cap = 16
        self.l1s = [
            SetAssociativeCache(
                config.l1_bytes, config.l1_ways, config.line_bytes, f"l1.{i}"
            )
            for i in range(n_cores)
        ]
        self.llc = SetAssociativeCache(
            config.llc_bytes, config.llc_ways, config.line_bytes, "llc"
        )
        self.stats = StatsRegistry("hierarchy")
        self._probes_on = probes.enabled
        #: Span tracer: the hierarchy stamps each sampled raw request's
        #: *origin* (demand/secondary/prefetch/writeback/atomic/fence) at
        #: emission time, keyed by its raw-stream ordinal.
        self._spans = spans
        self._spans_on = spans.enabled
        #: `raw_requests` counts *every* request entering the coalescer
        #: (demand + secondary + prefetch + write-back + atomic + fence) —
        #: the per-window load the `repro trace` timeline leads with.
        self._t_raw = probes.counter("raw_requests")
        self._t_demand = probes.counter("demand_misses")
        self._t_secondary = probes.counter("secondary_raw")
        self._t_prefetch = probes.counter("prefetch_raw")
        self._t_writebacks = probes.counter("writebacks")

    # ------------------------------------------------------------------ #

    def process(self, trace: AccessTrace, fine_grain: bool = False) -> RawStream:
        """Run the whole trace through the hierarchy.

        Returns the ordered raw request stream for the coalescer. The
        trace must already be in cycle order (as produced by
        :meth:`WorkloadGenerator.generate`).

        With ``fine_grain=True`` (the Figure 10b experiment) demand and
        secondary raw requests carry the triggering access's exact
        address and size (1-8B) instead of whole cache lines; the
        miss/hit structure is unchanged. Write-backs always flush whole
        dirty lines.
        """
        line = self.config.line_bytes
        out: List[MemoryRequest] = []
        raw_count = self.stats.counter("raw_requests")
        secondary_count = self.stats.counter("secondary_raw")
        prefetch_count = self.stats.counter("prefetch_raw")
        wb_count = self.stats.counter("writebacks")

        # Convert the trace columns to native Python ints once — the per
        # element ``int(arr[i])`` pattern costs a numpy scalar box per
        # access in the hot loop below.
        addrs = np.asarray(trace.addrs).tolist()
        ops = np.asarray(trace.ops).tolist()
        cycles = np.asarray(trace.cycles).tolist()
        store_val = int(MemOp.STORE)
        n = len(trace)

        # Per-core future-access lists for the OoO lookahead scan (one
        # vectorized modulo pass shared by all cores).
        core_mod = np.asarray(trace.cores) % self.n_cores
        core_lists = [
            np.flatnonzero(core_mod == c).tolist()
            for c in range(self.n_cores)
        ]
        cores = core_mod.tolist()
        core_pos = [0] * self.n_cores

        t_raw = self._t_raw
        probes_on = self._probes_on
        spans = self._spans
        spans_on = self._spans_on

        def emit(addr, op, core, cycle, size=None, kind="demand"):
            raw_count.value += 1
            if probes_on:
                t_raw.add(cycle)
            if spans_on and spans.is_sampled(len(out)):
                spans.origin(len(out), kind)
            out.append(
                MemoryRequest(addr=addr, size=size if size else line,
                              op=op, core_id=core, cycle=cycle)
            )

        def emit_wb(addr, core, cycle):
            wb_count.value += 1
            if probes_on:
                t_raw.add(cycle)
                self._t_writebacks.add(cycle)
            if spans_on and spans.is_sampled(len(out)):
                spans.origin(len(out), "writeback")
            out.append(
                MemoryRequest(addr=addr, size=line, op=MemOp.STORE,
                              core_id=core, cycle=cycle)
            )

        atomic_val = int(MemOp.ATOMIC)
        fence_val = int(MemOp.FENCE)
        for i in range(n):
            addr = addrs[i]
            cycle = cycles[i]
            core = cores[i]
            op_val = ops[i]
            is_store = op_val == store_val
            line_addr = addr - (addr % line)
            core_pos[core] += 1

            if op_val == atomic_val:
                # Atomics bypass the caches entirely and are routed to
                # the memory controller uncoalesced (Section 3.3.1); the
                # line is invalidated to keep coherence trivially.
                self.l1s[core].invalidate(line_addr)
                self.llc.invalidate(line_addr)
                self.stats.counter("atomics").add()
                if probes_on:
                    t_raw.add(cycle)
                if spans_on and spans.is_sampled(len(out)):
                    spans.origin(len(out), "atomic")
                out.append(
                    MemoryRequest(
                        addr=addr, size=int(trace.sizes[i]),
                        op=MemOp.ATOMIC, core_id=core, cycle=cycle,
                    )
                )
                continue
            if op_val == fence_val:
                # Fences carry no data; they propagate as markers that
                # drain the coalescer's stage 1 (Section 3.3.1).
                self.stats.counter("fences").add()
                if probes_on:
                    t_raw.add(cycle)
                if spans_on and spans.is_sampled(len(out)):
                    spans.origin(len(out), "fence")
                out.append(
                    MemoryRequest(
                        addr=line_addr, size=line, op=MemOp.FENCE,
                        core_id=core, cycle=cycle,
                    )
                )
                continue

            l1 = self.l1s[core]
            res = l1.access(line_addr, is_store)
            if res.hit:
                continue
            if res.writeback is not None:
                llc_wb = self.llc.install(res.writeback, dirty=True)
                if llc_wb is not None:
                    emit_wb(llc_wb, core, cycle)

            llc_res = self.llc.access(line_addr, is_store)
            if llc_res.writeback is not None:
                emit_wb(llc_res.writeback, core, cycle)
            if llc_res.hit:
                continue

            # LLC demand miss -> primary raw request.
            op = MemOp.STORE if is_store else MemOp.LOAD
            if probes_on:
                self._t_demand.add(cycle)
            if fine_grain:
                emit(addr, op, core, cycle, size=int(trace.sizes[i]))
            else:
                emit(line_addr, op, core, cycle)

            # OoO lookahead: same-line accesses already in the core's
            # load queue issue immediately as secondaries.
            if self.secondary_cap:
                lst = core_lists[core]
                start = core_pos[core]
                stop = min(len(lst), start + self.lookahead_window)
                emitted = 0
                for j in lst[start:stop]:
                    future = addrs[j]
                    if future - (future % line) == line_addr:
                        secondary_count.value += 1
                        if probes_on:
                            self._t_secondary.add(cycle)
                        if fine_grain:
                            emit(future, op, core, cycle,
                                 size=int(trace.sizes[j]), kind="secondary")
                        else:
                            emit(line_addr, op, core, cycle,
                                 kind="secondary")
                        emitted += 1
                        if emitted >= self.secondary_cap:
                            break

            # Region streamer prefetch.
            if self.prefetch_enabled:
                self._prefetch(
                    l1, line_addr, op, core, cycle, emit, emit_wb,
                    prefetch_count,
                )

        return RawStream(requests=out, n_accesses=n, stats=self.stats)

    def _prefetch(
        self, l1, line_addr, op, core, cycle, emit, emit_wb, prefetch_count
    ) -> None:
        line = self.config.line_bytes
        table = self._stride_tables[core]
        page = line_addr // PAGE_BYTES
        last = table.get(page)
        table[page] = line_addr
        if len(table) > self._stride_table_cap:
            table.pop(next(iter(table)))
        # Ascending within two regions counts as stride continuation.
        if last is None or not (
            0 < line_addr - last <= 2 * PREFETCH_REGION_BYTES
        ):
            return
        region_end = (
            line_addr
            - (line_addr % PREFETCH_REGION_BYTES)
            + PREFETCH_REGION_BYTES * (1 + self.config.prefetch_regions)
        )
        page_end = page * PAGE_BYTES + PAGE_BYTES
        stop = min(region_end, page_end)
        pf = line_addr + line
        while pf < stop:
            if not self.llc.contains(pf):
                l1_victim = l1.install(pf)
                if l1_victim is not None:
                    llc_wb = self.llc.install(l1_victim, dirty=True)
                    if llc_wb is not None:
                        emit_wb(llc_wb, core, cycle)
                wb = self.llc.install(pf)
                if wb is not None:
                    emit_wb(wb, core, cycle)
                prefetch_count.value += 1
                if self._probes_on:
                    self._t_prefetch.add(cycle)
                emit(pf, op, core, cycle, kind="prefetch")
            pf += line

    # ------------------------------------------------------------------ #

    def fine_grain_stream(self, trace: AccessTrace) -> RawStream:
        """Figure 10b mode: raw requests carry the CPU's actual address
        and data size (1–8B) instead of whole cache lines — see
        :meth:`process`. (The engine disables the prefetcher here.)"""
        return self.process(trace, fine_grain=True)

    def summary_metrics(self, n_raw_total: int) -> Dict[str, float]:
        """Hit rates and raw-stream composition for ``RunResult``.

        Must be read off a *populated* hierarchy (after :meth:`process`);
        the artifact pipeline captures these at cache-pass time so
        phase-2 coalescer jobs never need the hierarchy at all.
        """
        n_raw_total = max(1, n_raw_total)
        return {
            "l1_hit_rate": (
                sum(l1.hit_rate for l1 in self.l1s) / len(self.l1s)
            ),
            "llc_hit_rate": self.llc.hit_rate,
            "secondary_fraction": (
                self.stats.count("secondary_raw") / n_raw_total
            ),
            "prefetch_fraction": (
                self.stats.count("prefetch_raw") / n_raw_total
            ),
            "writeback_fraction": (
                self.stats.count("writebacks") / n_raw_total
            ),
        }
