"""Multi-core cache hierarchy producing the LLC miss/write-back stream."""

from repro.cache.setassoc import AccessResult, SetAssociativeCache
from repro.cache.hierarchy import CacheHierarchy, RawStream
from repro.cache.queues import RequestQueues

__all__ = [
    "AccessResult",
    "SetAssociativeCache",
    "CacheHierarchy",
    "RawStream",
    "RequestQueues",
]
