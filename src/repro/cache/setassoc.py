"""Set-associative cache with LRU replacement and write-back semantics.

Used for both the per-core L1s and the shared LLC (Table 1: 8-way, 16KB
L1, 8MB L2). The cache operates at line granularity; byte offsets are
stripped by the hierarchy before lookup.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional

from repro.common.stats import StatsRegistry


@dataclass(frozen=True, slots=True)
class AccessResult:
    """Outcome of a single cache lookup."""

    hit: bool
    #: Line address of a dirty victim evicted by this access (write-back
    #: traffic), or None.
    writeback: Optional[int] = None


#: Shared no-writeback results — the overwhelmingly common outcomes, so
#: the hot path avoids allocating a fresh (frozen, identical) object.
_HIT = AccessResult(hit=True)
_MISS_CLEAN = AccessResult(hit=False)


class SetAssociativeCache:
    """LRU set-associative cache over line addresses.

    ``access`` performs lookup + allocate-on-miss in one step
    (write-allocate for stores, fetch-on-miss for loads). Dirty victims
    are surfaced to the caller as write-back line addresses.
    """

    def __init__(
        self,
        total_bytes: int,
        ways: int,
        line_bytes: int = 64,
        name: str = "cache",
    ) -> None:
        if total_bytes <= 0 or ways <= 0 or line_bytes <= 0:
            raise ValueError("cache geometry must be positive")
        if total_bytes % (ways * line_bytes):
            raise ValueError("total size must divide into ways * line size")
        self.line_bytes = line_bytes
        self.ways = ways
        self.n_sets = total_bytes // (ways * line_bytes)
        self.name = name
        # sets[i]: OrderedDict line_addr -> dirty flag, LRU first.
        self._sets: List[OrderedDict] = [OrderedDict() for _ in range(self.n_sets)]
        self.stats = StatsRegistry(name)
        self._c_hits = self.stats.counter("hits")
        self._c_misses = self.stats.counter("misses")
        self._c_dirty_evictions = self.stats.counter("dirty_evictions")
        # Shift/mask set indexing when the geometry allows it (always, for
        # the power-of-two Table 1 caches): for non-negative line-aligned
        # addresses, ``(a >> shift) & mask`` == ``(a // line) % n_sets``.
        pow2 = not (self.line_bytes & (self.line_bytes - 1)) and not (
            self.n_sets & (self.n_sets - 1)
        )
        self._line_shift = self.line_bytes.bit_length() - 1 if pow2 else None
        self._set_mask = self.n_sets - 1

    def _set_index(self, line_addr: int) -> int:
        if self._line_shift is not None:
            return (line_addr >> self._line_shift) & self._set_mask
        return (line_addr // self.line_bytes) % self.n_sets

    def access(self, line_addr: int, is_store: bool = False) -> AccessResult:
        """Look up ``line_addr``; allocate on miss. Returns hit status and
        any dirty victim's line address."""
        if line_addr % self.line_bytes:
            raise ValueError(
                f"{self.name}: unaligned line address {line_addr:#x}"
            )
        shift = self._line_shift
        if shift is not None:
            cache_set = self._sets[(line_addr >> shift) & self._set_mask]
        else:
            cache_set = self._sets[self._set_index(line_addr)]
        if line_addr in cache_set:
            cache_set.move_to_end(line_addr)
            if is_store:
                cache_set[line_addr] = True
            self._c_hits.value += 1
            return _HIT

        self._c_misses.value += 1
        writeback = None
        if len(cache_set) >= self.ways:
            victim, dirty = cache_set.popitem(last=False)
            if dirty:
                writeback = victim
                self._c_dirty_evictions.value += 1
        cache_set[line_addr] = is_store
        if writeback is None:
            return _MISS_CLEAN
        return AccessResult(hit=False, writeback=writeback)

    def contains(self, line_addr: int) -> bool:
        """Non-destructive presence probe (no LRU update)."""
        shift = self._line_shift
        if shift is not None:
            return line_addr in self._sets[(line_addr >> shift) & self._set_mask]
        return line_addr in self._sets[self._set_index(line_addr)]

    def install(self, line_addr: int, dirty: bool = False) -> Optional[int]:
        """Insert a line without counting a demand access (fills from the
        level below). Returns a dirty victim if one was evicted."""
        shift = self._line_shift
        if shift is not None:
            cache_set = self._sets[(line_addr >> shift) & self._set_mask]
        else:
            cache_set = self._sets[self._set_index(line_addr)]
        if line_addr in cache_set:
            cache_set.move_to_end(line_addr)
            if dirty:
                cache_set[line_addr] = True
            return None
        writeback = None
        if len(cache_set) >= self.ways:
            victim, was_dirty = cache_set.popitem(last=False)
            if was_dirty:
                writeback = victim
        cache_set[line_addr] = dirty
        return writeback

    def invalidate(self, line_addr: int) -> bool:
        """Drop a line if present; returns whether it was present."""
        cache_set = self._sets[self._set_index(line_addr)]
        return cache_set.pop(line_addr, None) is not None

    @property
    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)

    @property
    def hit_rate(self) -> float:
        hits = self.stats.count("hits")
        misses = self.stats.count("misses")
        total = hits + misses
        return hits / total if total else 0.0


class FlatLRU:
    """Flat-array LRU state for the batched front-end engine.

    Replaces the per-set ``OrderedDict`` with four flat parallel way
    arrays plus one residency dict:

    * ``tags[slot]``  — line address resident in ``slot`` (−1 = empty),
      where ``slot = set_index * ways + way``.
    * ``stamps[slot]`` — monotonic age stamp, refreshed on every touch.
    * ``dirty[slot]`` — write-back flag.
    * ``lens[base]``  — live lines in the set whose first slot is
      ``base`` (indexed by slot base, so callers never divide by
      ``ways``; only multiples of ``ways`` are used).
    * ``slots``       — dict line_addr → slot, the O(1) residency probe.

    LRU equivalence with :class:`SetAssociativeCache`: an ``OrderedDict``
    keeps lines in last-touch order (``move_to_end`` on hit/re-install,
    ``popitem(last=False)`` victim). Unique monotonically increasing
    stamps reproduce exactly that order, so the min-stamp way of a full
    set *is* the OrderedDict's first entry. Stamps come from a single
    shared counter (``tick``) advanced by the caller; only uniqueness
    and monotonicity matter, so one counter can serve every cache in a
    hierarchy. Property-tested against the reference in
    ``tests/cache/test_batched_frontend_properties.py``.

    The methods below are the readable reference implementation of the
    update rules; the batched hierarchy inlines the same logic over
    locally-bound state for speed.
    """

    def __init__(self, cache: SetAssociativeCache) -> None:
        n_slots = cache.n_sets * cache.ways
        self.ways = cache.ways
        self.line_bytes = cache.line_bytes
        self.n_sets = cache.n_sets
        self.tags: List[int] = [-1] * n_slots
        self.stamps: List[int] = [0] * n_slots
        self.dirty: List[bool] = [False] * n_slots
        self.lens: List[int] = [0] * n_slots
        self.slots: dict = {}
        # Shift/mask set indexing mirrors the wrapped cache exactly.
        self._line_shift = cache._line_shift
        self._set_mask = cache._set_mask
        self.tick = 0

    def slot_base(self, line_addr: int) -> int:
        """First slot of the set holding ``line_addr``."""
        if self._line_shift is not None:
            return ((line_addr >> self._line_shift) & self._set_mask) * self.ways
        return ((line_addr // self.line_bytes) % self.n_sets) * self.ways

    def touch(self, slot: int, dirty: bool) -> None:
        """Refresh a resident line's age (OrderedDict ``move_to_end``)."""
        self.stamps[slot] = self.tick
        self.tick += 1
        if dirty:
            self.dirty[slot] = True

    def fill(self, line_addr: int, dirty: bool) -> Optional[int]:
        """Insert a line known to be absent; returns any dirty victim.

        Mirrors the miss arm of :meth:`SetAssociativeCache.access` /
        :meth:`~SetAssociativeCache.install`: evict the min-stamp way
        when the set is full, otherwise claim the first empty way.
        """
        base = self.slot_base(line_addr)
        end = base + self.ways
        tags, stamps = self.tags, self.stamps
        writeback = None
        if self.lens[base] >= self.ways:
            set_stamps = stamps[base:end]
            slot = base + set_stamps.index(min(set_stamps))
            victim = tags[slot]
            del self.slots[victim]
            if self.dirty[slot]:
                writeback = victim
        else:
            self.lens[base] += 1
            slot = base + tags[base:end].index(-1)
        tags[slot] = line_addr
        self.dirty[slot] = dirty
        stamps[slot] = self.tick
        self.tick += 1
        self.slots[line_addr] = slot
        return writeback

    def access(self, line_addr: int, is_store: bool = False) -> AccessResult:
        """Reference-equivalent demand access (hit/allocate-on-miss)."""
        slot = self.slots.get(line_addr)
        if slot is not None:
            self.touch(slot, is_store)
            return _HIT
        writeback = self.fill(line_addr, is_store)
        if writeback is None:
            return _MISS_CLEAN
        return AccessResult(hit=False, writeback=writeback)

    def install(self, line_addr: int, dirty: bool = False) -> Optional[int]:
        """Reference-equivalent fill from below (no demand counting)."""
        slot = self.slots.get(line_addr)
        if slot is not None:
            self.touch(slot, dirty)
            return None
        return self.fill(line_addr, dirty)

    def contains(self, line_addr: int) -> bool:
        return line_addr in self.slots

    def invalidate(self, line_addr: int) -> bool:
        slot = self.slots.pop(line_addr, None)
        if slot is None:
            return False
        self.tags[slot] = -1
        self.dirty[slot] = False
        self.lens[slot - slot % self.ways] -= 1
        return True

    @property
    def occupancy(self) -> int:
        return len(self.slots)
