"""Conventional JEDEC DDR device model (the paper's Section 2 foil).

DDR4 with an open-page policy and wide (8KB) rows: the row-buffer-hit
harvesting approach to coalescing that works for DDR but — as the paper
argues — cannot work for 3D-stacked memory's narrow closed-page rows.
Used by the ``ddr_vs_hmc`` ablation bench.
"""

from repro.ddr.device import DDRConfig, DDRDevice

__all__ = ["DDRConfig", "DDRDevice"]
