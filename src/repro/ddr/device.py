"""DDR4 device with open-page policy and row-buffer-hit harvesting.

The contrast device for the paper's Section 2 argument:

* **Wide rows** (8KB vs HMC's 256B) make the open-page policy pay off:
  the row buffer stays open after each access and subsequent accesses to
  the same row are fast *row hits* — this is the conventional
  "row-buffer hit harvesting" form of coalescing (Section 2.2.1).
* **Fixed 64B bursts** (BL8 on a 64-bit bus): no request-size
  adaptivity, so a PAC-style coalescer has nothing to coalesce *into* —
  the device-side reason PAC targets 3D-stacked parts.
* **Low bank count** (16 banks x few channels vs HMC's 256 banks): less
  bank-level parallelism; under irregular traffic the open rows thrash
  and every access pays the full precharge-activate-CAS penalty.

Implements the same :class:`repro.mshr.dmc.MemoryDevice` protocol and
the accounting surface of :class:`repro.hmc.device.HMCDevice` so the
engine can swap it in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.common.stats import StatsRegistry
from repro.common.types import CoalescedRequest
from repro.hmc.power import EnergyModel


@dataclass(frozen=True)
class DDRConfig:
    """DDR4-2400-class timing at the 2GHz model clock."""

    n_channels: int = 2
    banks_per_channel: int = 16
    row_bytes: int = 8192
    burst_bytes: int = 64
    #: CAS-only access to an open row (tCL + burst), cycles.
    row_hit_cycles: int = 30
    #: Activate + CAS on an idle (precharged) bank.
    row_empty_cycles: int = 60
    #: Precharge + activate + CAS when a different row is open.
    row_conflict_cycles: int = 90
    #: Data-bus occupancy per 64B burst, cycles (~16GB/s per channel).
    bus_cycles_per_burst: int = 8

    def __post_init__(self) -> None:
        if self.n_channels <= 0 or self.banks_per_channel <= 0:
            raise ValueError("channel/bank counts must be positive")
        if self.row_bytes <= 0 or self.row_bytes % self.burst_bytes:
            raise ValueError("row size must be a multiple of the burst")
        if not (
            self.row_hit_cycles
            < self.row_empty_cycles
            < self.row_conflict_cycles
        ):
            raise ValueError("timing must order hit < empty < conflict")


class _Bank:
    __slots__ = ("open_row", "busy_until")

    def __init__(self) -> None:
        self.open_row = None
        self.busy_until = 0


class DDRDevice:
    """Open-page DDR4 behind per-channel shared data buses."""

    def __init__(
        self, config: Optional[DDRConfig] = None, probes=None, spans=None,
    ) -> None:
        self.config = config if config is not None else DDRConfig()
        # None-resolve convention (matches HMCDevice): the module-level
        # null singletons are bound here, never as evaluated-at-import
        # default arguments.
        if probes is None:
            from repro.telemetry import NULL_TELEMETRY

            probes = NULL_TELEMETRY
        if spans is None:
            from repro.telemetry import NULL_SPANS

            spans = NULL_SPANS
        self._spans = spans
        self._spans_on = spans.enabled
        cfg = self.config
        self._banks: Dict[Tuple[int, int], _Bank] = {}
        self._bus_busy_until = [0] * cfg.n_channels
        self.energy = EnergyModel()
        self.stats = StatsRegistry("ddr")
        self._probes_on = probes.enabled
        self._t_packets = probes.counter("packets")
        self._t_latency = probes.gauge("latency_cycles")
        self._t_conflicts = probes.scope("banks").counter("conflicts")
        self._t_activations = probes.scope("banks").counter("activations")
        self._t_energy = probes.counter("energy_pj")

    # -- address mapping -------------------------------------------------- #

    def locate(self, addr: int) -> Tuple[int, int, int]:
        """(channel, bank, row) with row-interleaved channel mapping."""
        cfg = self.config
        row_index = addr // cfg.row_bytes
        channel = row_index % cfg.n_channels
        bank = (row_index // cfg.n_channels) % cfg.banks_per_channel
        row = row_index // (cfg.n_channels * cfg.banks_per_channel)
        return channel, bank, row

    # -- MemoryDevice protocol --------------------------------------------- #

    def submit(self, packet: CoalescedRequest, cycle: int) -> int:
        """Service one request; returns the data-return cycle.

        Requests larger than one burst are legal (the engine may hand a
        coalesced packet to DDR for comparison runs) and are transferred
        as consecutive bursts from the same row where possible.
        """
        cfg = self.config
        if packet.size <= 0:
            raise ValueError("packet must carry data")
        channel, bank_id, row = self.locate(packet.addr)
        bank = self._banks.setdefault((channel, bank_id), _Bank())

        pj_before = self.energy.total_pj if self._probes_on else 0.0
        start = max(cycle, bank.busy_until)
        if bank.open_row is None:
            access = cfg.row_empty_cycles
            self.stats.counter("row_empties").add()
            self.energy.charge("DRAM-ACTIVATE", 1)
            if self._probes_on:
                self._t_activations.add(cycle)
        elif bank.open_row == row:
            access = cfg.row_hit_cycles
            self.stats.counter("row_hits").add()
        else:
            access = cfg.row_conflict_cycles
            self.stats.counter("row_conflicts").add()
            self.energy.charge("DRAM-ACTIVATE", 1)
            if self._probes_on:
                self._t_activations.add(cycle)
                self._t_conflicts.add(cycle)
        bank.open_row = row  # open-page: row stays open after access

        n_bursts = -(-packet.size // cfg.burst_bytes)
        dram_done = start + access
        # Bursts serialize on the channel's shared data bus.
        bus_start = max(dram_done, self._bus_busy_until[channel])
        completion = bus_start + n_bursts * cfg.bus_cycles_per_burst
        self._bus_busy_until[channel] = completion
        bank.busy_until = dram_done

        self.energy.charge("DRAM-TRANSFER", packet.size)
        self.stats.counter("packets").add()
        self.stats.counter("payload_bytes").add(packet.size)
        # DDR has no packet headers: transaction bytes == payload bytes
        # (command/address travel on dedicated pins).
        self.stats.counter("transaction_bytes").add(packet.size)
        self.stats.accumulator("latency_cycles").add(completion - cycle)
        if self._probes_on:
            self._t_packets.add(cycle)
            self._t_latency.observe(cycle, completion - cycle)
            self._t_energy.add(cycle, self.energy.total_pj - pj_before)
        if self._spans_on:
            # The channel plays the vault role in the span taxonomy.
            self._spans.device_span(
                packet,
                vault=channel,
                link=channel,
                start=cycle,
                completion=completion,
                segments=(
                    ("vault_wait", cycle, start),
                    ("dram", start, dram_done),
                    ("response", dram_done, completion),
                ),
            )
        return completion

    # -- accounting surface (mirrors HMCDevice) ----------------------------- #

    @property
    def bank_conflicts(self) -> int:
        return self.stats.count("row_conflicts")

    @property
    def row_hit_rate(self) -> float:
        hits = self.stats.count("row_hits")
        total = (
            hits
            + self.stats.count("row_conflicts")
            + self.stats.count("row_empties")
        )
        return hits / total if total else 0.0

    @property
    def mean_latency_cycles(self) -> float:
        return self.stats.accumulator("latency_cycles").mean

    @property
    def total_transaction_bytes(self) -> int:
        return self.stats.count("transaction_bytes")

    @property
    def total_payload_bytes(self) -> int:
        return self.stats.count("payload_bytes")

    class _BankFacade:
        def __init__(self, device: "DDRDevice") -> None:
            self._device = device

        @property
        def total_activations(self) -> int:
            return self._device.stats.count(
                "row_empties"
            ) + self._device.stats.count("row_conflicts")

        @property
        def total_conflicts(self) -> int:
            return self._device.stats.count("row_conflicts")

    @property
    def banks(self) -> "_BankFacade":
        """Engine-facing facade matching ``HMCDevice.banks``."""
        return DDRDevice._BankFacade(self)
