"""Array-backed back-end engine for the DDR4 foil.

:class:`BatchedDDRDevice` is the DDR twin of
:class:`repro.hmc.batched.BatchedHMCDevice`: identical open-page timing
maths to :class:`repro.ddr.device.DDRDevice` — the per-bank open-row /
busy-until and per-channel bus horizons are shared live, so residual
state matches the reference after every packet — with the per-packet
registry writes (three string-keyed counter lookups per packet in the
reference's hit/empty/conflict classification alone) deferred into a
flat window accumulator and merged once per :meth:`sync`.

Bit-identity follows the same argument as the HMC twin:
DRAM-ACTIVATE carries an integer pJ constant (sum counts, multiply
once, exact below 2**53); DRAM-TRANSFER (1.2 pJ/byte, not exactly
representable) charges live per packet in order — deferring it would
round differently once the running total is nonzero; latency samples
are integral. Lazily-created reference
counters are mirrored exactly: :meth:`sync` only materializes a
counter the window actually touched, so the registry's key set matches
a reference run's.
"""

from __future__ import annotations

from math import inf
from typing import List, Optional

from repro.ddr.device import DDRConfig, DDRDevice, _Bank
from repro.hmc.power import ENERGY_PJ


class BatchedDDRDevice(DDRDevice):
    """DDRDevice with deferred window accounting (the back-end engine)."""

    def __init__(
        self,
        config: Optional[DDRConfig] = None,
        probes=None,
        spans=None,
    ) -> None:
        if probes is not None and probes.enabled:
            raise ValueError(
                "BatchedDDRDevice defers all accounting past the probe "
                "windows; use DDRDevice (engine='reference') for probe runs"
            )
        if spans is not None and spans.enabled:
            raise ValueError(
                "BatchedDDRDevice materializes no per-packet segments; "
                "use DDRDevice (engine='reference') for span runs"
            )
        super().__init__(config, probes=probes, spans=spans)
        cfg = self.config
        self._row_bytes = cfg.row_bytes
        self._n_channels = cfg.n_channels
        self._banks_per_channel = cfg.banks_per_channel
        self._burst_bytes = cfg.burst_bytes
        self._hit_cycles = cfg.row_hit_cycles
        self._empty_cycles = cfg.row_empty_cycles
        self._conflict_cycles = cfg.row_conflict_cycles
        self._bus_cycles = cfg.bus_cycles_per_burst
        self._pj_activate = ENERGY_PJ["DRAM-ACTIVATE"]
        self._pj_transfer = ENERGY_PJ["DRAM-TRANSFER"]
        self._pj_store = self.energy.picojoules
        # Window accumulator: [hits, empties, conflicts, packets,
        # payload_bytes] + deferred latency list
        # [count, total, min, max, sumsq].
        self._w: List[int] = [0, 0, 0, 0, 0]
        self._w_lat: List = [0, 0, inf, -inf, 0]

    # -- MemoryDevice protocol --------------------------------------------- #

    def submit(self, packet, cycle: int) -> int:
        """Reference timing maths, deferred accounting."""
        size = packet.size
        if size <= 0:
            raise ValueError("packet must carry data")
        row_index = packet.addr // self._row_bytes
        channel = row_index % self._n_channels
        bank_id = (row_index // self._n_channels) % self._banks_per_channel
        row = row_index // (self._n_channels * self._banks_per_channel)
        bank = self._banks.get((channel, bank_id))
        if bank is None:
            bank = self._banks[(channel, bank_id)] = _Bank()

        w = self._w
        busy = bank.busy_until
        start = cycle if cycle >= busy else busy
        open_row = bank.open_row
        if open_row is None:
            access = self._empty_cycles
            w[1] += 1
        elif open_row == row:
            access = self._hit_cycles
            w[0] += 1
        else:
            access = self._conflict_cycles
            w[2] += 1
        bank.open_row = row  # open-page: row stays open after access

        n_bursts = -(-size // self._burst_bytes)
        dram_done = start + access
        bus = self._bus_busy_until
        bus_busy = bus[channel]
        bus_start = dram_done if dram_done >= bus_busy else bus_busy
        completion = bus_start + n_bursts * self._bus_cycles
        bus[channel] = completion
        bank.busy_until = dram_done

        w[3] += 1
        w[4] += size
        # Charged live, in packet order: see the module docstring.
        self._pj_store["DRAM-TRANSFER"] += size * self._pj_transfer
        latency = completion - cycle
        lat = self._w_lat
        lat[0] += 1
        lat[1] += latency
        lat[4] += latency * latency
        if latency < lat[2]:
            lat[2] = latency
        if latency > lat[3]:
            lat[3] = latency
        return completion

    def submit_window(self, packets) -> List[int]:
        """Replay ``packets`` (each carrying ``issue_cycle``) in one
        hoisted-local sweep; merge accounting once; return completions."""
        self.sync()
        completions: List[int] = []
        out = completions.append

        row_bytes = self._row_bytes
        n_channels = self._n_channels
        banks_per_channel = self._banks_per_channel
        burst_bytes = self._burst_bytes
        hit_cycles = self._hit_cycles
        empty_cycles = self._empty_cycles
        conflict_cycles = self._conflict_cycles
        bus_cycles = self._bus_cycles
        pj_transfer = self._pj_transfer
        pj_store = self._pj_store
        banks = self._banks
        bus = self._bus_busy_until

        w_hits = w_empties = w_conflicts = 0
        w_packets = w_payload = 0
        lat_n = lat_total = lat_sumsq = 0
        lat_min = inf
        lat_max = -inf

        for packet in packets:
            cycle = packet.issue_cycle
            size = packet.size
            if size <= 0:
                raise ValueError("packet must carry data")
            row_index = packet.addr // row_bytes
            channel = row_index % n_channels
            key = (channel, (row_index // n_channels) % banks_per_channel)
            row = row_index // (n_channels * banks_per_channel)
            bank = banks.get(key)
            if bank is None:
                bank = banks[key] = _Bank()

            busy = bank.busy_until
            start = cycle if cycle >= busy else busy
            open_row = bank.open_row
            if open_row is None:
                access = empty_cycles
                w_empties += 1
            elif open_row == row:
                access = hit_cycles
                w_hits += 1
            else:
                access = conflict_cycles
                w_conflicts += 1
            bank.open_row = row

            n_bursts = -(-size // burst_bytes)
            dram_done = start + access
            bus_busy = bus[channel]
            bus_start = dram_done if dram_done >= bus_busy else bus_busy
            completion = bus_start + n_bursts * bus_cycles
            bus[channel] = completion
            bank.busy_until = dram_done

            w_packets += 1
            w_payload += size
            pj_store["DRAM-TRANSFER"] += size * pj_transfer
            latency = completion - cycle
            lat_n += 1
            lat_total += latency
            lat_sumsq += latency * latency
            if latency < lat_min:
                lat_min = latency
            if latency > lat_max:
                lat_max = latency
            out(completion)

        w = self._w
        w[0] = w_hits
        w[1] = w_empties
        w[2] = w_conflicts
        w[3] = w_packets
        w[4] = w_payload
        lat = self._w_lat
        lat[0] = lat_n
        lat[1] = lat_total
        lat[2] = lat_min
        lat[3] = lat_max
        lat[4] = lat_sumsq
        self.sync()
        return completions

    # -- merge point -------------------------------------------------------- #

    def sync(self) -> None:
        """Merge the window into the shared registries and reset it.

        Counters are created only when the window touched them — the
        reference creates them lazily on first event, so the registry's
        key set stays identical run-for-run. Idempotent when empty.
        """
        w = self._w
        hits, empties, conflicts, packets, payload = w
        stats = self.stats
        if hits:
            stats.counter("row_hits").value += hits
        if empties:
            stats.counter("row_empties").value += empties
        if conflicts:
            stats.counter("row_conflicts").value += conflicts
        if packets:
            stats.counter("packets").value += packets
            stats.counter("payload_bytes").value += payload
            # DDR has no packet headers: transaction bytes == payload.
            stats.counter("transaction_bytes").value += payload
        self._pj_store["DRAM-ACTIVATE"] += (
            (empties + conflicts) * self._pj_activate
        )
        lat = self._w_lat
        if lat[0]:
            acc = stats.accumulator("latency_cycles")
            acc.count += lat[0]
            acc.total += lat[1]
            acc._sumsq += lat[4]
            if lat[2] < acc.min:
                acc.min = lat[2]
            if lat[3] > acc.max:
                acc.max = lat[3]
        self._w = [0, 0, 0, 0, 0]
        self._w_lat = [0, 0, inf, -inf, 0]
